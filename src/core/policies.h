// Falkon scheduling policies (paper section 3.1).
//
// Four policy families govern the execution model:
//   * dispatch policy         — which executor gets the next task;
//   * replay policy           — when to re-dispatch (timeout / failure);
//   * resource acquisition    — when/how many resources to request from the
//                               LRM (five strategies, paper evaluates
//                               "all-at-once");
//   * resource release        — when to give resources back (distributed
//                               idle-timeout, evaluated; centralized
//                               threshold, described).
//
// These objects are shared verbatim between the real threaded stack
// (core::Dispatcher / core::Provisioner) and the discrete-event simulation,
// so the policy logic evaluated at paper scale is the same code that runs
// in the real system.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/task.h"

namespace falkon::core {

// ---------------------------------------------------------------- dispatch

/// Candidate executor offered to the dispatch policy.
struct ExecutorCandidate {
  ExecutorId id;
  /// Probe for the executor's local data cache (may be empty).
  std::function<bool(const std::string& object)> has_cached;
};

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Choose one of `idle` for `task`; returns an index into `idle`.
  /// `idle` is never empty.
  [[nodiscard]] virtual std::size_t select(
      const TaskSpec& task, const std::vector<ExecutorCandidate>& idle) = 0;

  /// Executor-initiated variant: when executor `self` asks for work, return
  /// the index (into `queue`, a bounded lookahead window of queued tasks) of
  /// the task it should receive. Default: head of queue.
  [[nodiscard]] virtual std::size_t select_task(
      const ExecutorCandidate& self, const std::vector<const TaskSpec*>& queue);

  /// True when select_task always picks the head of the queue. The
  /// dispatcher then skips building the lookahead window for every popped
  /// task, which is the dominant per-task cost on the dispatch hot path.
  /// Conservative default: any policy that overrides select_task keeps the
  /// window unless it also opts in here.
  [[nodiscard]] virtual bool selects_queue_head() const { return false; }

  /// True when select() always returns index 0, i.e. the policy takes the
  /// first idle candidate it is offered and never inspects the task. The
  /// dispatcher then skips building the candidate list entirely and pops
  /// the notification target from an ordered idle set in O(log n) instead
  /// of snapshotting and sorting the whole registry per notification.
  /// Conservative default: any policy that inspects candidates must keep
  /// the full scan.
  [[nodiscard]] virtual bool selects_first_idle() const { return false; }
};

/// Paper's evaluated policy: "dispatches each task to the next available
/// resource".
class NextAvailablePolicy final : public DispatchPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "next-available"; }
  [[nodiscard]] std::size_t select(
      const TaskSpec&, const std::vector<ExecutorCandidate>&) override {
    return 0;
  }
  [[nodiscard]] bool selects_queue_head() const override { return true; }
  [[nodiscard]] bool selects_first_idle() const override { return true; }
};

/// Paper section 6 (future work, implemented here): prefer executors whose
/// local cache already holds the task's input object; fall back to
/// next-available.
class DataAwarePolicy final : public DispatchPolicy {
 public:
  explicit DataAwarePolicy(std::size_t lookahead = 32) : lookahead_(lookahead) {}
  [[nodiscard]] const char* name() const override { return "data-aware"; }
  [[nodiscard]] std::size_t select(
      const TaskSpec& task, const std::vector<ExecutorCandidate>& idle) override;
  [[nodiscard]] std::size_t select_task(
      const ExecutorCandidate& self,
      const std::vector<const TaskSpec*>& queue) override;

 private:
  std::size_t lookahead_;
};

/// Data-diffusion "good cache compute" policy (docs/DATA.md). Like
/// DataAwarePolicy, but when an executor asks for work it additionally
/// prefers tasks with no data dependency over tasks whose input is cached
/// on some *other* executor — those stay queued for their cache holder to
/// claim. The dispatcher bounds the resulting deferral with
/// DispatcherConfig::max_locality_wait_s so locality never starves a task
/// (invariant I12); the policy itself only expresses the preference.
class GoodCacheComputePolicy final : public DispatchPolicy {
 public:
  explicit GoodCacheComputePolicy(std::size_t lookahead = 32)
      : lookahead_(lookahead) {}
  [[nodiscard]] const char* name() const override {
    return "good-cache-compute";
  }
  [[nodiscard]] std::size_t select(
      const TaskSpec& task, const std::vector<ExecutorCandidate>& idle) override;
  [[nodiscard]] std::size_t select_task(
      const ExecutorCandidate& self,
      const std::vector<const TaskSpec*>& queue) override;

 private:
  std::size_t lookahead_;
};

// ------------------------------------------------------------------ replay

struct ReplayPolicy {
  /// Re-dispatch a task if no response after this long (0 disables).
  double response_timeout_s{0.0};
  /// Maximum re-dispatch attempts after the first (paper: "up to some
  /// specified number of retries").
  int max_retries{3};
  /// Whether a failed (non-zero exit) response is replayed too.
  bool retry_on_failure{true};
};

// ------------------------------------------------------------- acquisition

struct AcquisitionContext {
  int queued_tasks{0};
  int busy_executors{0};
  int idle_executors{0};
  /// Executors requested from the LRM but not yet registered.
  int pending_executors{0};
  int max_executors{0};
  /// Free nodes the LRM reports (for the system-functions strategy).
  int lrm_free_nodes{0};
  int executors_per_node{1};
};

/// Returns the sizes (in executors) of the allocation requests to issue
/// now; empty means "do nothing this round".
class AcquisitionPolicy {
 public:
  virtual ~AcquisitionPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual std::vector<int> plan(const AcquisitionContext& ctx) = 0;

 protected:
  /// Executors still needed: demand (queued, capped by max) minus supply
  /// (registered + pending).
  [[nodiscard]] static int deficit(const AcquisitionContext& ctx);
};

/// "all-at-once": one request for everything needed (paper's evaluated
/// strategy).
class AllAtOncePolicy final : public AcquisitionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "all-at-once"; }
  [[nodiscard]] std::vector<int> plan(const AcquisitionContext& ctx) override;
};

/// "one-at-a-time": n requests for a single resource each.
class OneAtATimePolicy final : public AcquisitionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "one-at-a-time"; }
  [[nodiscard]] std::vector<int> plan(const AcquisitionContext& ctx) override;
};

/// Arithmetically growing requests: 1, 1+k, 1+2k, ... until covered.
class AdditivePolicy final : public AcquisitionPolicy {
 public:
  explicit AdditivePolicy(int increment = 1) : increment_(increment) {}
  [[nodiscard]] const char* name() const override { return "additive"; }
  [[nodiscard]] std::vector<int> plan(const AcquisitionContext& ctx) override;

 private:
  int increment_;
};

/// Exponentially growing requests: 1, 2, 4, 8, ... until covered.
class ExponentialPolicy final : public AcquisitionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "exponential"; }
  [[nodiscard]] std::vector<int> plan(const AcquisitionContext& ctx) override;
};

/// Uses system functions (LRM free-node count) to bound the request.
class SystemAvailablePolicy final : public AcquisitionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "available"; }
  [[nodiscard]] std::vector<int> plan(const AcquisitionContext& ctx) override;
};

[[nodiscard]] std::unique_ptr<AcquisitionPolicy> make_acquisition_policy(
    const std::string& name);

// ----------------------------------------------------------------- release

/// Distributed release (paper's evaluated policy) is enforced executor-side
/// via ExecutorConfig::idle_timeout_s; this struct names the setting so
/// benchmark sweeps (Falkon-15/60/120/180/inf) are self-describing.
struct DistributedReleasePolicy {
  /// Executor releases itself after this much idle time; <= 0 means never
  /// (Falkon-inf).
  double idle_timeout_s{60.0};
};

struct ReleaseContext {
  int queued_tasks{0};
  int idle_executors{0};
  int registered_executors{0};
  int min_executors{0};
};

/// Centralized release: decisions from dispatcher-visible state.
class CentralizedReleasePolicy {
 public:
  virtual ~CentralizedReleasePolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// How many idle executors to release now.
  [[nodiscard]] virtual int executors_to_release(const ReleaseContext& ctx) = 0;
};

/// "if there are no queued tasks, release all [idle] resources; if the
/// number of queued tasks is less than q, release a resource."
class QueueThresholdReleasePolicy final : public CentralizedReleasePolicy {
 public:
  explicit QueueThresholdReleasePolicy(int threshold) : threshold_(threshold) {}
  [[nodiscard]] const char* name() const override { return "queue-threshold"; }
  [[nodiscard]] int executors_to_release(const ReleaseContext& ctx) override;

 private:
  int threshold_;
};

}  // namespace falkon::core
