#include "core/executor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace falkon::core {

ExecutorRuntime::ExecutorRuntime(Clock& clock, DispatcherLink& link,
                                 TaskEngine& engine, ExecutorOptions options)
    : clock_(clock), link_(link), engine_(engine), options_(options) {
  if (options_.obs != nullptr) {
    obs::Registry& reg = options_.obs->registry();
    tracer_ = &options_.obs->tracer();
    m_tasks_ = &reg.counter("falkon.executor.tasks_executed");
    m_notifications_ = &reg.counter("falkon.executor.notifications");
    m_empty_polls_ = &reg.counter("falkon.executor.empty_polls");
    m_exec_time_ = &reg.histogram("falkon.executor.exec_time_s", 1e-6, 1e4);
  }
}

ExecutorRuntime::~ExecutorRuntime() { stop(); }

Status ExecutorRuntime::start() {
  wire::RegisterRequest request;
  request.node_id = options_.node_id;
  request.host = options_.host;
  request.slots = 1;
  request.allocation_id = options_.allocation_id;

  fault::Backoff backoff(options_.backoff, options_.node_id.value + 1);
  Status last_error = ok_status();
  for (int attempt = 0; attempt <= options_.register_retries; ++attempt) {
    if (attempt > 0 && !interruptible_sleep(backoff.next_s())) {
      return make_error(ErrorCode::kCancelled, "stopped during registration");
    }
    auto registered = link_.register_executor(request);
    if (registered.ok()) {
      id_value_.store(registered.value().value, std::memory_order_release);
      running_.store(true);
      thread_ = std::thread([this] { work_loop(); });
      if (options_.heartbeat_interval_s > 0) {
        heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
      }
      return ok_status();
    }
    last_error = registered.error();
    LOG_DEBUG("executor", "registration attempt %d failed: %s", attempt + 1,
              registered.error().str().c_str());
  }
  return last_error;
}

void ExecutorRuntime::notify(std::uint64_t resource_key) {
  {
    std::lock_guard lock(mu_);
    if (resource_key == kReleaseResourceKey) {
      stop_requested_.store(true);
    } else {
      notified_ = true;
    }
  }
  cv_.notify_all();
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.notifications;
  }
  if (m_notifications_) m_notifications_->inc();
}

void ExecutorRuntime::request_stop() {
  stop_requested_.store(true);
  cv_.notify_all();
}

void ExecutorRuntime::stop() {
  request_stop();
  join();
}

void ExecutorRuntime::join() {
  if (thread_.joinable()) thread_.join();
  // The work loop has exited; release the heartbeat thread too so a dead
  // executor stops beaconing (a crashed one must look dead to the detector).
  stop_requested_.store(true);
  cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

ExecutorStats ExecutorRuntime::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void ExecutorRuntime::set_exit_listener(
    std::function<void(ExecutorId)> listener) {
  std::lock_guard lock(stats_mu_);
  exit_listener_ = std::move(listener);
}

void ExecutorRuntime::set_id_listener(
    std::function<void(ExecutorId)> listener) {
  std::lock_guard lock(stats_mu_);
  id_listener_ = std::move(listener);
}

bool ExecutorRuntime::try_reregister() {
  wire::RegisterRequest request;
  request.node_id = options_.node_id;
  request.host = options_.host;
  request.slots = 1;
  request.allocation_id = options_.allocation_id;

  // Reuse the link-retry budget: re-registration is the recovery tail of a
  // failed link call, and register_retries may be 0 on runtimes that only
  // opted into link retries.
  const int budget = std::max(options_.register_retries, options_.link_retries);
  fault::Backoff backoff(options_.backoff, options_.node_id.value + 1);
  for (int attempt = 0; attempt <= budget; ++attempt) {
    if (attempt > 0 && !interruptible_sleep(backoff.next_s())) return false;
    auto registered = link_.register_executor(request);
    if (registered.ok()) {
      id_value_.store(registered.value().value, std::memory_order_release);
      std::function<void(ExecutorId)> listener;
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.reregistrations;
        listener = id_listener_;
      }
      if (listener) listener(registered.value());
      LOG_INFO("executor", "re-registered after dispatcher failover: id=%llu",
               static_cast<unsigned long long>(registered.value().value));
      return true;
    }
  }
  return false;
}

bool ExecutorRuntime::interruptible_sleep(double model_s) {
  if (model_s <= 0) return !stop_requested_.load();
  const double real_s = model_s / clock_.rate();
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(real_s),
               [&] { return stop_requested_.load(); });
  return !stop_requested_.load();
}

template <class Call>
auto ExecutorRuntime::call_with_retry(Call&& call) -> decltype(call()) {
  auto result = call();
  if (result.ok() || options_.link_retries <= 0) return result;
  fault::Backoff backoff(options_.backoff, id().value + 1);
  for (int attempt = 0; attempt < options_.link_retries; ++attempt) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.link_retries;
    }
    if (!interruptible_sleep(backoff.next_s())) return result;
    result = call();
    if (result.ok()) return result;
  }
  return result;
}

void ExecutorRuntime::heartbeat_loop() {
  while (!stop_requested_.load() && running_.load()) {
    if (!interruptible_sleep(options_.heartbeat_interval_s)) return;
    if (crashed_.load() || !running_.load()) return;
    if (link_.heartbeat(id()).ok()) {
      std::lock_guard lock(stats_mu_);
      ++stats_.heartbeats_sent;
    }
  }
}

void ExecutorRuntime::work_loop() {
  std::string exit_reason = "stopped";
  std::vector<TaskSpec> pending;  // pre-fetched bundle
  double idle_since = clock_.now_s();  // for poll-mode idle accounting
  const std::uint32_t pull_size =
      options_.adaptive_bundle ? wire::kAdaptiveBundle : options_.max_bundle;
  const std::uint32_t want_size = options_.adaptive_bundle
                                      ? wire::kAdaptiveWant
                                      : options_.piggyback_tasks;

  for (;;) {
    bool dispatcher_gone = false;
    bool executed_any = false;
    // Drain available work.
    for (;;) {
      if (stop_requested_.load() || crashed_.load()) break;
      std::vector<TaskSpec> tasks;
      if (!pending.empty()) {
        tasks = std::move(pending);
        pending.clear();
      } else {
        auto work =
            call_with_retry([&] { return link_.get_work(id(), pull_size); });
        if (!work.ok()) {
          // kNotFound means a dispatcher answered but doesn't know us — a
          // promoted standby took over (docs/HA.md). Re-register under a
          // fresh id and keep working.
          if (work.error().code == ErrorCode::kNotFound && try_reregister()) {
            continue;
          }
          dispatcher_gone = true;
          exit_reason = "dispatcher unreachable";
          break;
        }
        tasks = work.take();
      }
      if (tasks.empty()) {
        {
          std::lock_guard lock(stats_mu_);
          ++stats_.empty_polls;
        }
        if (m_empty_polls_) m_empty_polls_->inc();
        break;
      }

      // Pre-fetch (section 6): grab the next bundle before executing, so
      // dispatch latency overlaps with execution.
      if (options_.prefetch) {
        auto next = link_.get_work(id(), pull_size);
        if (next.ok()) pending = next.take();
      }

      std::vector<TaskResult> results;
      results.reserve(tasks.size());
      for (const auto& task : tasks) {
        if (options_.fault != nullptr) {
          const fault::Outcome outcome =
              options_.fault->sample(fault::Site::kExecutorTask);
          if (outcome.action == fault::Action::kCrash) {
            // Simulated process death: vanish mid-task without delivering a
            // result or deregistering. The dispatcher's failure detector
            // must notice and requeue everything we held.
            crashed_.store(true);
            break;
          }
          if (outcome.action == fault::Action::kHang) {
            // Wedge for param model-seconds holding the task: only the
            // replay timeout can recover it (heartbeats keep flowing).
            if (!interruptible_sleep(outcome.param)) break;
            continue;  // task swallowed, never completed nor delivered
          }
          if (outcome.action == fault::Action::kSlow ||
              outcome.action == fault::Action::kDelay) {
            if (!interruptible_sleep(outcome.param)) break;
          }
        }
        const double start = clock_.now_s();
        TaskResult result = engine_.run(task);
        result.task_id = task.id;
        result.executor_id = id();
        const double elapsed = clock_.now_s() - start;
        {
          std::lock_guard lock(stats_mu_);
          ++stats_.tasks_executed;
          stats_.busy_time_s += elapsed;
        }
        if (tracer_) {
          tracer_->record(task.id, obs::Stage::kExec, start, start + elapsed,
                          id().value);
        }
        if (m_tasks_) {
          m_tasks_->inc();
          m_exec_time_->record(elapsed);
        }
        executed_any = true;
        results.push_back(std::move(result));
      }
      if (crashed_.load()) break;

      if (results.empty()) continue;  // every task hung: nothing to deliver
      const std::uint32_t want = stop_requested_.load() ? 0 : want_size;
      auto results_shared =
          std::make_shared<std::vector<TaskResult>>(std::move(results));
      auto ack = call_with_retry([&] {
        return link_.deliver_results(id(), *results_shared, want);
      });
      if (!ack.ok()) {
        if (ack.error().code == ErrorCode::kNotFound && try_reregister()) {
          // Failover mid-delivery: the promoted dispatcher recovered these
          // tasks from the journal and will re-dispatch them, so the stale
          // results (and any pre-fetched bundle) are dropped — the client
          // still sees each completion exactly once.
          pending.clear();
          continue;
        }
        dispatcher_gone = true;
        exit_reason = "result delivery failed";
        break;
      }
      // Piggy-backed tasks ({7}) short-circuit the notify/get-work round
      // trip: execute them immediately next iteration.
      if (!ack.value().empty()) {
        if (pending.empty()) {
          pending = ack.take();
        } else {
          for (auto& t : ack.value()) pending.push_back(std::move(t));
        }
      }
    }

    if (dispatcher_gone || stop_requested_.load() || crashed_.load()) break;
    if (executed_any) idle_since = clock_.now_s();
    // Poll and probe modes enforce the idle timeout across wakeup rounds
    // (the probe only governs the wait when shorter than the idle budget).
    if ((options_.poll_interval_s > 0 ||
         (options_.takeover_probe_s > 0 &&
          options_.takeover_probe_s < options_.idle_timeout_s)) &&
        options_.idle_timeout_s > 0 &&
        clock_.now_s() - idle_since >= options_.idle_timeout_s) {
      exit_reason = "idle timeout";
      break;
    }
    if (!wait_for_wakeup()) {
      if (stop_requested_.load()) break;
      exit_reason = "idle timeout";
      break;  // distributed release policy fired
    }
  }

  if (crashed_.load()) exit_reason = "crashed (injected)";
  // A crashed executor dies silently — no goodbye to the dispatcher.
  if (exit_reason != "dispatcher unreachable" && !crashed_.load()) {
    (void)link_.deregister(id(), exit_reason);
  }
  running_.store(false);
  std::function<void(ExecutorId)> listener;
  {
    std::lock_guard lock(stats_mu_);
    listener = exit_listener_;
  }
  if (listener) listener(id());
  LOG_DEBUG("executor", "executor %llu exited: %s",
            static_cast<unsigned long long>(id().value), exit_reason.c_str());
}

bool ExecutorRuntime::wait_for_wakeup() {
  std::unique_lock lock(mu_);
  const auto ready = [&] { return notified_ || stop_requested_.load(); };
  if (options_.poll_interval_s > 0) {
    // Polling mode: wake up after the poll interval regardless of
    // notifications (a notification still short-circuits the wait). The
    // idle timeout is enforced by the caller across poll rounds.
    const double real_interval = options_.poll_interval_s / clock_.rate();
    (void)cv_.wait_for(lock, std::chrono::duration<double>(real_interval),
                       ready);
  } else if (options_.takeover_probe_s > 0 &&
             (options_.idle_timeout_s <= 0 ||
              options_.takeover_probe_s < options_.idle_timeout_s)) {
    // Push mode with a takeover probe: wake at most every probe interval
    // and report "work may be available" so the loop issues one get_work.
    // A promoted standby that doesn't know us answers it with kNotFound,
    // which triggers re-registration (docs/HA.md) — without the probe an
    // idle push-mode executor would wait here forever after a failover.
    // The idle timeout (necessarily longer than the probe here) is
    // enforced by the caller across probe rounds.
    const double real_probe = options_.takeover_probe_s / clock_.rate();
    (void)cv_.wait_for(lock, std::chrono::duration<double>(real_probe), ready);
  } else if (options_.idle_timeout_s > 0) {
    // idle_timeout_s is model time; convert to a real wait.
    const double real_timeout = options_.idle_timeout_s / clock_.rate();
    if (!cv_.wait_for(lock, std::chrono::duration<double>(real_timeout),
                      ready)) {
      return false;  // idle timeout elapsed: distributed release
    }
  } else {
    cv_.wait(lock, ready);
  }
  notified_ = false;
  return !stop_requested_.load();
}

}  // namespace falkon::core
