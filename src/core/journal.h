// Durability hooks for the dispatcher (docs/HA.md).
//
// The dispatcher is the paper's single point of failure: a crash loses
// every queued, bundled and in-flight task. StateJournal is the seam that
// fixes this without coupling core to any storage or replication code —
// the dispatcher calls one hook per state transition (submit, assign,
// requeue/retry, complete/quarantine, delivered, instance lifecycle) and
// `falkon::ha` implements them with a segmented write-ahead log, periodic
// snapshots and a warm standby.
//
// Contract: every hook is invoked *before* the transition becomes visible
// to other dispatcher threads (while the lock guarding it is still held),
// and implementations serialise appends internally. That makes the log a
// linearisation of dispatcher history: replaying it in order reconstructs
// the state the dispatcher would expose. Hook implementations must treat
// their own mutex as a leaf lock — they are called under inst_mu_,
// queue_mu_, entry mutexes and instance mutexes, and must never call back
// into the dispatcher.
//
// Follows the nullable-hook discipline of obs::Obs* / fault::FaultInjector*:
// DispatcherConfig::journal == nullptr disables journaling at the cost of
// one predicted branch per transition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/task.h"

namespace falkon::core {

/// A client instance as reconstructed from the log: its identity, the
/// submit-seq high-water mark (dedup across failover) and the results that
/// completed but were never picked up (the mailbox, re-delivered after a
/// takeover; the client dedups by task id).
struct InstanceImage {
  InstanceId id;
  ClientId client;
  std::uint64_t last_submit_seq{0};
  std::vector<TaskResult> mailbox;
};

/// A non-terminal task. Tasks that were assigned to an executor at crash
/// time are indistinguishable from queued ones after recovery — the
/// executors are gone — so both re-enter the wait queue with their attempt
/// count preserved.
struct QueuedTaskImage {
  InstanceId instance;
  TaskSpec spec;
  int attempts{0};
};

/// Everything needed to restart a dispatcher: Dispatcher::restore() seeds a
/// fresh dispatcher from it, ha::StateMachine folds log records into it,
/// and snapshots serialise it.
struct DispatcherImage {
  /// High-water mark of handed-out instance ids (restored so a promoted
  /// dispatcher never re-issues an id).
  std::uint64_t next_instance_id{0};
  std::vector<InstanceImage> instances;
  /// All non-terminal tasks in submission/requeue order.
  std::vector<QueuedTaskImage> queue;

  // Terminal counters, so status() stays continuous across a takeover.
  std::uint64_t submitted{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  std::uint64_t retried{0};
  std::uint64_t quarantined{0};

  /// Promotion epoch the state was produced under (monotone across
  /// failovers; 0 = pre-epoch state). Fencing, not payload: the dispatcher
  /// never inspects it, but services reject stale-epoch peers with it.
  std::uint64_t epoch{0};
};

/// Journaling hooks, one per dispatcher state transition. See the ordering
/// contract in the file comment.
class StateJournal {
 public:
  virtual ~StateJournal() = default;

  virtual void on_instance_created(InstanceId instance, ClientId client) = 0;
  virtual void on_instance_destroyed(InstanceId instance) = 0;
  /// `submit_seq` is the client's dedup sequence (0: client not using dedup).
  virtual void on_submit(InstanceId instance, std::uint64_t submit_seq,
                         const std::vector<TaskSpec>& tasks) = 0;
  /// Tasks handed to an executor in one bundle.
  virtual void on_assign(ExecutorId executor,
                         const std::vector<TaskId>& tasks) = 0;
  /// Tasks returned to the wait queue; `retry` when the attempt counter was
  /// bumped (failure retry / replay timeout) as opposed to a blameless
  /// executor removal.
  virtual void on_requeue(const std::vector<TaskId>& tasks, bool retry) = 0;
  /// Terminal result (success, permanent failure, or quarantine).
  virtual void on_complete(InstanceId instance, const TaskResult& result,
                           bool quarantined) = 0;
  /// Results handed to the client by wait_results: they leave the mailbox
  /// and must not be re-delivered after recovery.
  virtual void on_delivered(InstanceId instance,
                            const std::vector<TaskId>& tasks) = 0;

  /// Durability barrier: returns once every hook invoked before this call
  /// has reached the journal's storage (per its fsync policy). Synchronous
  /// journals are already durable on hook return and keep the default
  /// no-op; asynchronous ones (ha::AsyncJournal) drain their queue here.
  /// Called OUTSIDE dispatcher locks — unlike the hooks, barrier() may
  /// block.
  virtual void barrier() {}
};

/// Server side of log shipping: the warm standby pulls record batches (or a
/// full snapshot when it is too far behind) through this interface, which
/// the TCP service exposes as the ReplFetch/ReplAppend/ReplSnapshot
/// messages (docs/HA.md).
class ReplicationSource {
 public:
  /// Either a run of framed log records [first_lsn, last_lsn] or, when the
  /// requested position fell behind the in-memory tail, a full state
  /// snapshot at `last_lsn`. An empty payload with is_snapshot == false
  /// means the follower is already caught up.
  struct Batch {
    bool is_snapshot{false};
    std::uint64_t first_lsn{0};
    std::uint64_t last_lsn{0};
    std::string payload;
    /// Source's current epoch, stamped on the Repl* reply.
    std::uint64_t epoch{0};
  };

  virtual ~ReplicationSource() = default;

  virtual Batch fetch(std::uint64_t from_lsn, std::uint32_t max_bytes) = 0;

  /// Follower progress report (ReplAck); drives replication-lag metrics.
  virtual void note_ack(std::uint64_t applied_lsn) { (void)applied_lsn; }
};

}  // namespace falkon::core
