#include "core/dispatcher.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/logging.h"
#include "common/strings.h"

namespace falkon::core {

wire::StatusReply DispatcherStatus::to_wire() const {
  wire::StatusReply reply;
  reply.submitted_tasks = submitted;
  reply.queued_tasks = queued;
  reply.dispatched_tasks = dispatched;
  reply.completed_tasks = completed;
  reply.failed_tasks = failed;
  reply.retried_tasks = retried;
  reply.suspicions = suspicions;
  reply.false_suspicions = false_suspicions;
  reply.quarantined_tasks = quarantined;
  reply.registered_executors = registered_executors;
  reply.busy_executors = busy_executors;
  reply.idle_executors = idle_executors;
  return reply;
}

Dispatcher::Dispatcher(Clock& clock, DispatcherConfig config,
                       std::unique_ptr<DispatchPolicy> policy)
    : clock_(clock),
      config_(config),
      policy_(policy ? std::move(policy)
                     : std::make_unique<NextAvailablePolicy>()),
      notify_pool_(static_cast<std::size_t>(std::max(1, config.notify_threads)),
                   "notify") {
  if (config_.obs != nullptr) {
    obs::Registry& reg = config_.obs->registry();
    tracer_ = &config_.obs->tracer();
    m_submitted_ = &reg.counter("falkon.dispatcher.tasks_submitted");
    m_dispatched_ = &reg.counter("falkon.dispatcher.tasks_dispatched");
    m_completed_ = &reg.counter("falkon.dispatcher.tasks_completed");
    m_failed_ = &reg.counter("falkon.dispatcher.tasks_failed");
    m_retried_ = &reg.counter("falkon.dispatcher.tasks_retried");
    m_notifications_ = &reg.counter("falkon.dispatcher.notifications");
    m_heartbeats_ = &reg.counter("falkon.dispatcher.heartbeats");
    m_suspicions_ = &reg.counter("falkon.dispatcher.suspicions");
    m_false_suspicions_ = &reg.counter("falkon.dispatcher.false_suspicions");
    m_quarantined_ = &reg.counter("falkon.dispatcher.tasks_quarantined");
    m_renotifies_ = &reg.counter("falkon.dispatcher.renotifies");
    m_sweeps_ = &reg.counter("falkon.dispatcher.sweeps");
    m_queue_depth_ = &reg.gauge("falkon.dispatcher.queue_depth");
    m_queue_time_ = &reg.histogram("falkon.task.queue_time_s", 1e-6, 1e4);
    m_overhead_ = &reg.histogram("falkon.task.overhead_s", 1e-6, 1e4);
  }
  if (config_.sweep_interval_s > 0) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
}

Dispatcher::~Dispatcher() { shutdown(); }

void Dispatcher::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [id, instance] : instances_) {
      std::lock_guard ilock(instance->mu);
      instance->open = false;
      instance->cv.notify_all();
    }
  }
  if (sweeper_.joinable()) {
    {
      std::lock_guard lock(sweep_mu_);
      sweep_stop_ = true;
    }
    sweep_cv_.notify_all();
    sweeper_.join();
  }
  notify_pool_.shutdown();
}

void Dispatcher::sweeper_loop() {
  std::unique_lock lock(sweep_mu_);
  for (;;) {
    // Model-time interval -> real wait for scaled clocks; the cv makes
    // shutdown prompt regardless of the interval.
    const double real_interval = config_.sweep_interval_s / clock_.rate();
    sweep_cv_.wait_for(lock, std::chrono::duration<double>(real_interval),
                       [&] { return sweep_stop_; });
    if (sweep_stop_) return;
    lock.unlock();
    if (m_sweeps_) m_sweeps_->inc();
    (void)check_replays();
    (void)check_liveness();
    renotify_stale();
    lock.lock();
  }
}

Result<InstanceId> Dispatcher::create_instance(ClientId client) {
  std::lock_guard lock(mu_);
  if (shutdown_) return make_error(ErrorCode::kClosed, "dispatcher shut down");
  const InstanceId id = instance_ids_.next();
  auto instance = std::make_shared<Instance>();
  instance->client = client;
  instances_[id.value] = std::move(instance);
  return id;
}

Status Dispatcher::destroy_instance(InstanceId instance_id) {
  std::shared_ptr<Instance> instance;
  {
    std::lock_guard lock(mu_);
    auto it = instances_.find(instance_id.value);
    if (it == instances_.end()) {
      return make_error(ErrorCode::kNotFound, "no such instance");
    }
    instance = it->second;
    instances_.erase(it);
    // Drop this instance's queued tasks; in-flight ones will be discarded
    // at delivery time because the instance is gone.
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const QueuedTask& task) {
                                  return task.instance == instance_id;
                                }),
                 queue_.end());
    counters_.queued = queue_.size();
  }
  {
    std::lock_guard ilock(instance->mu);
    instance->open = false;
  }
  instance->cv.notify_all();
  return ok_status();
}

Result<std::uint64_t> Dispatcher::submit(InstanceId instance_id,
                                         std::vector<TaskSpec> tasks) {
  std::lock_guard lock(mu_);
  if (shutdown_) return make_error(ErrorCode::kClosed, "dispatcher shut down");
  if (instances_.find(instance_id.value) == instances_.end()) {
    return make_error(ErrorCode::kNotFound, "no such instance");
  }
  const double now = clock_.now_s();
  for (auto& spec : tasks) {
    if (!spec.id.valid()) {
      return make_error(ErrorCode::kInvalidArgument, "task without id");
    }
    QueuedTask task;
    task.instance = instance_id;
    task.spec = std::move(spec);
    task.enqueue_s = now;
    if (tracer_) tracer_->instant(task.spec.id, obs::Stage::kSubmit, now);
    queue_.push_back(std::move(task));
  }
  const auto accepted = static_cast<std::uint64_t>(tasks.size());
  counters_.submitted += accepted;
  counters_.queued = queue_.size();
  if (m_submitted_) {
    m_submitted_->inc(accepted);
    m_queue_depth_->set(static_cast<double>(queue_.size()));
  }
  pump_notifications_locked();
  return accepted;
}

Result<std::vector<TaskResult>> Dispatcher::wait_results(
    InstanceId instance_id, std::uint32_t max_results, double timeout_s) {
  std::shared_ptr<Instance> instance;
  {
    std::lock_guard lock(mu_);
    auto it = instances_.find(instance_id.value);
    if (it == instances_.end()) {
      return make_error(ErrorCode::kNotFound, "no such instance");
    }
    instance = it->second;
  }
  if (max_results == 0) max_results = 1;
  // Model-time timeout -> real wait for scaled clocks.
  const double real_timeout = timeout_s / clock_.rate();
  std::unique_lock ilock(instance->mu);
  instance->cv.wait_for(
      ilock, std::chrono::duration<double>(real_timeout),
      [&] { return !instance->results.empty() || !instance->open; });
  std::vector<TaskResult> out;
  while (!instance->results.empty() && out.size() < max_results) {
    out.push_back(std::move(instance->results.front()));
    instance->results.pop_front();
  }
  if (out.empty() && !instance->open) {
    return make_error(ErrorCode::kClosed, "instance destroyed");
  }
  return out;
}

Result<ExecutorId> Dispatcher::register_executor(
    const wire::RegisterRequest& request, std::shared_ptr<ExecutorSink> sink) {
  std::lock_guard lock(mu_);
  if (shutdown_) return make_error(ErrorCode::kClosed, "dispatcher shut down");
  const ExecutorId id = executor_ids_.next();
  ExecutorEntry entry;
  entry.id = id;
  entry.info = request;
  entry.sink = std::move(sink);
  entry.registered_s = clock_.now_s();
  entry.last_heartbeat_s = entry.registered_s;
  executors_[id.value] = std::move(entry);
  counters_.registered_executors =
      static_cast<std::uint32_t>(executors_.size());
  pump_notifications_locked();
  return id;
}

void Dispatcher::remove_executor_locked(std::uint64_t executor_value,
                                        const std::string& reason, bool blame,
                                        std::vector<PendingRoute>& to_route) {
  auto it = executors_.find(executor_value);
  if (it == executors_.end()) return;
  // Requeue anything in flight on this executor; under `blame` the death
  // is charged to the tasks it held, and a task that has now killed
  // config_.quarantine_threshold distinct executors is poison — fail it
  // permanently instead of handing it to yet another victim.
  std::vector<std::uint64_t> orphaned;
  for (const auto& [task_id, dispatched] : dispatched_) {
    if (dispatched.executor.value == executor_value) orphaned.push_back(task_id);
  }
  std::size_t requeued = 0;
  for (auto task_id : orphaned) {
    auto node = dispatched_.extract(task_id);
    DispatchedTask task = std::move(node.mapped());
    if (blame &&
        std::find(task.killers.begin(), task.killers.end(), executor_value) ==
            task.killers.end()) {
      task.killers.push_back(executor_value);
    }
    if (blame && config_.quarantine_threshold > 0 &&
        static_cast<int>(task.killers.size()) >= config_.quarantine_threshold) {
      ++counters_.quarantined;
      ++counters_.failed;
      if (m_quarantined_) m_quarantined_->inc();
      if (m_failed_) m_failed_->inc();
      LOG_WARN("dispatcher",
               "task %llu quarantined after killing %zu executors",
               static_cast<unsigned long long>(task.spec.id.value),
               task.killers.size());
      TaskResult result;
      result.task_id = task.spec.id;
      result.executor_id = ExecutorId{executor_value};
      result.state = TaskState::kFailed;
      result.exit_code = -1;
      result.stderr_data = "quarantined: poison task killed " +
                           std::to_string(task.killers.size()) + " executors";
      result.queue_time_s = task.dispatch_s - task.enqueue_s;
      if (auto iit = instances_.find(task.instance.value);
          iit != instances_.end()) {
        to_route.push_back(
            PendingRoute{task.instance, iit->second, std::move(result)});
      }
      continue;
    }
    requeue_locked(std::move(task), /*front=*/true);
    ++requeued;
  }
  executors_.erase(it);
  counters_.registered_executors =
      static_cast<std::uint32_t>(executors_.size());
  counters_.dispatched = dispatched_.size();
  LOG_DEBUG("dispatcher", "executor %llu deregistered (%s), %zu tasks requeued",
            static_cast<unsigned long long>(executor_value), reason.c_str(),
            requeued);
}

void Dispatcher::route_all(std::vector<PendingRoute>& to_route) {
  for (auto& pending : to_route) {
    route_result(pending.instance_id, pending.instance,
                 std::move(pending.result));
  }
  to_route.clear();
}

Status Dispatcher::deregister_executor(ExecutorId executor_id,
                                       const std::string& reason) {
  std::lock_guard lock(mu_);
  auto it = executors_.find(executor_id.value);
  if (it == executors_.end()) {
    return make_error(ErrorCode::kNotFound, "no such executor");
  }
  // An orderly deregistration never blames the executor's tasks, so no
  // quarantine results can be produced here.
  std::vector<PendingRoute> to_route;
  remove_executor_locked(executor_id.value, reason, /*blame=*/false, to_route);
  pump_notifications_locked();
  return ok_status();
}

Status Dispatcher::heartbeat(ExecutorId executor_id) {
  std::lock_guard lock(mu_);
  if (m_heartbeats_) m_heartbeats_->inc();
  auto it = executors_.find(executor_id.value);
  if (it == executors_.end()) {
    if (suspected_.erase(executor_id.value) > 0) {
      // The "dead" executor just beat: the detector was wrong.
      ++counters_.false_suspicions;
      if (m_false_suspicions_) m_false_suspicions_->inc();
    }
    return make_error(ErrorCode::kNotFound, "executor not registered");
  }
  it->second.last_heartbeat_s = clock_.now_s();
  return ok_status();
}

int Dispatcher::check_liveness() {
  if (config_.heartbeat_timeout_s <= 0) return 0;
  std::vector<PendingRoute> to_route;
  int removed = 0;
  {
    std::lock_guard lock(mu_);
    const double now = clock_.now_s();
    std::vector<std::uint64_t> dead;
    for (const auto& [id, entry] : executors_) {
      if (now - entry.last_heartbeat_s > config_.heartbeat_timeout_s) {
        dead.push_back(id);
      }
    }
    for (auto id : dead) {
      suspected_.insert(id);
      ++counters_.suspicions;
      if (m_suspicions_) m_suspicions_->inc();
      remove_executor_locked(id, "heartbeat timeout", /*blame=*/true,
                             to_route);
      ++removed;
    }
    if (removed > 0) pump_notifications_locked();
  }
  route_all(to_route);
  return removed;
}

ExecutorCandidate Dispatcher::candidate_locked(const ExecutorEntry& entry) {
  ExecutorCandidate candidate;
  candidate.id = entry.id;
  const auto* objects = &entry.cached_objects;
  candidate.has_cached = [objects](const std::string& object) {
    return objects->count(object) > 0;
  };
  return candidate;
}

void Dispatcher::pump_notifications_locked() {
  if (shutdown_) return;
  // Offer the queue head to idle executors, chosen by the dispatch policy,
  // until we run out of either queued tasks or idle executors.
  std::size_t queued = queue_.size();
  while (queued > 0) {
    std::vector<ExecutorCandidate> idle;
    std::vector<ExecutorEntry*> idle_entries;
    for (auto& [id, entry] : executors_) {
      if (entry.state == ExecState::kIdle && !entry.release_requested) {
        idle.push_back(candidate_locked(entry));
        idle_entries.push_back(&entry);
      }
    }
    if (idle.empty()) return;
    const std::size_t pick = std::min(
        policy_->select(queue_.front().spec, idle), idle.size() - 1);
    ExecutorEntry& chosen = *idle_entries[pick];
    chosen.state = ExecState::kNotified;
    chosen.notified_s = clock_.now_s();
    auto sink = chosen.sink;
    const ExecutorId id = chosen.id;
    if (m_notifications_) m_notifications_->inc();
    if (tracer_) {
      // Attribute the notification to the queue head — the task that made
      // the dispatcher wake this executor (it may end up pulling others).
      tracer_->instant(queue_.front().spec.id, obs::Stage::kNotify,
                       clock_.now_s(), id.value);
    }
    if (config_.fault != nullptr &&
        config_.fault->sample(fault::Site::kDispatcherNotify).action ==
            fault::Action::kDrop) {
      // Lost notification: the executor stays kNotified with no wake-up;
      // only the stale-notification resend (renotify_timeout_s) or a
      // piggy-backed ack can recover it.
      --queued;
      continue;
    }
    // The notification itself happens on the engine's thread pool {3}.
    (void)notify_pool_.submit([sink, id] {
      if (sink) sink->notify(id, id.value);
    });
    --queued;
  }
}

std::vector<TaskSpec> Dispatcher::take_work_locked(ExecutorEntry& entry,
                                                   std::uint32_t max_tasks) {
  max_tasks = std::min(max_tasks, config_.max_tasks_per_dispatch);
  if (max_tasks == 0) max_tasks = 1;
  std::vector<TaskSpec> out;
  double bundle_runtime = 0.0;
  const double now = clock_.now_s();
  while (out.size() < max_tasks && !queue_.empty()) {
    // Let the policy pick a task from a lookahead window (data-aware
    // scheduling); next-available always takes the head.
    std::vector<const TaskSpec*> window;
    const std::size_t window_size = std::min<std::size_t>(queue_.size(), 64);
    window.reserve(window_size);
    for (std::size_t i = 0; i < window_size; ++i) {
      window.push_back(&queue_[i].spec);
    }
    const std::size_t pick =
        std::min(policy_->select_task(candidate_locked(entry), window),
                 window_size - 1);
    // Estimate-balanced bundling: never grow a non-empty bundle past the
    // runtime budget (section 3.4's runtime-estimate fix for imbalance).
    if (config_.max_bundle_runtime_s > 0 && !out.empty() &&
        bundle_runtime + queue_[pick].spec.estimated_runtime_s >
            config_.max_bundle_runtime_s) {
      break;
    }
    QueuedTask task = std::move(queue_[pick]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));

    DispatchedTask dispatched;
    dispatched.instance = task.instance;
    dispatched.executor = entry.id;
    dispatched.enqueue_s = task.enqueue_s;
    dispatched.dispatch_s = now;
    dispatched.attempts = task.attempts;
    dispatched.killers = std::move(task.killers);
    dispatched.spec = task.spec;
    const std::uint64_t task_id = task.spec.id.value;
    bundle_runtime += task.spec.estimated_runtime_s;
    if (tracer_) {
      tracer_->record(task.spec.id, obs::Stage::kQueued, task.enqueue_s, now);
      tracer_->instant(task.spec.id, obs::Stage::kGetWork, now, entry.id.value);
    }
    if (m_queue_time_) m_queue_time_->record(now - task.enqueue_s);
    out.push_back(std::move(task.spec));
    dispatched_[task_id] = std::move(dispatched);
  }
  if (m_dispatched_) {
    m_dispatched_->inc(out.size());
    m_queue_depth_->set(static_cast<double>(queue_.size()));
  }
  if (!out.empty()) {
    entry.state = ExecState::kBusy;
    entry.inflight += static_cast<std::uint32_t>(out.size());
  } else if (entry.inflight == 0) {
    entry.state = ExecState::kIdle;
  }
  entry.notified_s = -1.0;  // the executor pulled: notification consumed
  counters_.queued = queue_.size();
  counters_.dispatched = dispatched_.size();
  std::uint32_t busy = 0;
  for (const auto& [id, e] : executors_) {
    if (e.state == ExecState::kBusy) ++busy;
  }
  counters_.busy_executors = busy;
  counters_.idle_executors =
      static_cast<std::uint32_t>(executors_.size()) - busy;
  return out;
}

Result<std::vector<TaskSpec>> Dispatcher::get_work(ExecutorId executor_id,
                                                   std::uint32_t max_tasks) {
  std::lock_guard lock(mu_);
  auto it = executors_.find(executor_id.value);
  if (it == executors_.end()) {
    if (suspected_.erase(executor_id.value) > 0) {
      ++counters_.false_suspicions;
      if (m_false_suspicions_) m_false_suspicions_->inc();
    }
    return make_error(ErrorCode::kNotFound, "executor not registered");
  }
  it->second.last_heartbeat_s = clock_.now_s();
  return take_work_locked(it->second, max_tasks);
}

void Dispatcher::route_result(InstanceId instance_id,
                              const std::shared_ptr<Instance>& instance,
                              TaskResult result) {
  std::size_t ready;
  {
    std::lock_guard ilock(instance->mu);
    if (!instance->open) return;
    instance->results.push_back(std::move(result));
    ready = instance->results.size();
  }
  instance->cv.notify_all();
  // Client notification {8}, sent off the delivery path.
  std::shared_ptr<ClientSink> sink;
  {
    std::lock_guard lock(mu_);
    sink = client_sink_;
  }
  if (sink) {
    (void)notify_pool_.submit([sink, instance_id, ready] {
      sink->notify(instance_id, ready);
    });
  }
}

Result<Dispatcher::DeliverOutcome> Dispatcher::deliver_results(
    ExecutorId executor_id, std::vector<TaskResult> results,
    std::uint32_t want_tasks) {
  std::vector<PendingRoute> to_route;
  DeliverOutcome outcome;
  {
    std::lock_guard lock(mu_);
    auto it = executors_.find(executor_id.value);
    if (it == executors_.end()) {
      if (suspected_.erase(executor_id.value) > 0) {
        // A delivery from a "dead" executor: it was alive all along. Its
        // tasks were already requeued; dropping this delivery keeps the
        // exactly-once result guarantee.
        ++counters_.false_suspicions;
        if (m_false_suspicions_) m_false_suspicions_->inc();
      }
      return make_error(ErrorCode::kNotFound, "executor not registered");
    }
    if (config_.fault != nullptr &&
        config_.fault->sample(fault::Site::kDispatcherAck).action ==
            fault::Action::kDrop) {
      // Lost ack: the delivery "never arrived" — nothing is processed, the
      // executor sees a failure and redelivers. The late-duplicate drop
      // below keeps redelivered results exactly-once.
      return make_error(ErrorCode::kUnavailable, "injected lost ack");
    }
    ExecutorEntry& entry = it->second;
    entry.last_heartbeat_s = clock_.now_s();
    const double now = clock_.now_s();

    for (auto& result : results) {
      auto dit = dispatched_.find(result.task_id.value);
      if (dit == dispatched_.end()) {
        // Late duplicate of a task already replayed elsewhere: drop it so
        // the client sees exactly one result per task.
        continue;
      }
      DispatchedTask dispatched = std::move(dit->second);
      dispatched_.erase(dit);
      if (entry.inflight > 0) --entry.inflight;
      ++outcome.acknowledged;

      result.queue_time_s = dispatched.dispatch_s - dispatched.enqueue_s;
      result.overhead_s = (now - dispatched.dispatch_s) - result.exec_time_s;
      result.executor_id = executor_id;
      overhead_stats_.add(result.overhead_s);
      if (tracer_) {
        // Result delivery {6}: from when execution finished (dispatch time
        // plus exec time, i.e. `now` minus the measured overhead) until the
        // dispatcher ingested the result.
        tracer_->record(result.task_id, obs::Stage::kDeliverResult,
                        now - std::max(0.0, result.overhead_s), now,
                        executor_id.value);
      }
      if (m_overhead_) m_overhead_->record(result.overhead_s);
      if (completion_listener_) completion_listener_(result, now);

      // Mirror the executor's data cache for data-aware dispatch.
      if (!dispatched.spec.data_object.empty()) {
        entry.cached_objects.insert(dispatched.spec.data_object);
      }

      const bool failed = !result.success();
      if (failed && config_.replay.retry_on_failure &&
          dispatched.attempts < config_.replay.max_retries) {
        ++dispatched.attempts;
        ++counters_.retried;
        if (m_retried_) m_retried_->inc();
        requeue_locked(std::move(dispatched), /*front=*/false);
        continue;
      }

      if (failed) {
        ++counters_.failed;
        if (m_failed_) m_failed_->inc();
      } else {
        ++counters_.completed;
        if (m_completed_) m_completed_->inc();
      }
      if (tracer_) {
        tracer_->instant(result.task_id, obs::Stage::kAck, now,
                         executor_id.value);
      }
      auto iit = instances_.find(dispatched.instance.value);
      if (iit != instances_.end()) {
        to_route.push_back(PendingRoute{dispatched.instance, iit->second,
                                        std::move(result)});
      }
    }

    // Piggy-back new work on the acknowledgement {7} (section 3.4).
    if (want_tasks > 0 && config_.piggyback && !entry.release_requested) {
      outcome.piggyback = take_work_locked(entry, want_tasks);
    }
    if (outcome.piggyback.empty()) {
      if (entry.inflight == 0) {
        entry.state = ExecState::kIdle;
      }
      pump_notifications_locked();
    }
    counters_.queued = queue_.size();
    counters_.dispatched = dispatched_.size();
    std::uint32_t busy = 0;
    for (const auto& [id, e] : executors_) {
      if (e.state == ExecState::kBusy) ++busy;
    }
    counters_.busy_executors = busy;
    counters_.idle_executors =
        static_cast<std::uint32_t>(executors_.size()) - busy;
  }
  route_all(to_route);
  return outcome;
}

void Dispatcher::note_cached_object(ExecutorId executor_id,
                                    const std::string& object) {
  if (object.empty()) return;
  std::lock_guard lock(mu_);
  auto it = executors_.find(executor_id.value);
  if (it != executors_.end()) it->second.cached_objects.insert(object);
}

void Dispatcher::requeue_locked(DispatchedTask task, bool front) {
  QueuedTask queued;
  queued.instance = task.instance;
  queued.spec = std::move(task.spec);
  queued.enqueue_s = task.enqueue_s;
  queued.attempts = task.attempts;
  queued.killers = std::move(task.killers);
  if (front) {
    queue_.push_front(std::move(queued));
  } else {
    queue_.push_back(std::move(queued));
  }
  counters_.queued = queue_.size();
}

DispatcherStatus Dispatcher::status() const {
  std::lock_guard lock(mu_);
  DispatcherStatus snapshot = counters_;
  snapshot.queued = queue_.size();
  snapshot.dispatched = dispatched_.size();
  snapshot.registered_executors =
      static_cast<std::uint32_t>(executors_.size());
  std::uint32_t busy = 0;
  for (const auto& [id, entry] : executors_) {
    if (entry.state == ExecState::kBusy) ++busy;
  }
  snapshot.busy_executors = busy;
  snapshot.idle_executors = snapshot.registered_executors - busy;
  return snapshot;
}

int Dispatcher::check_replays() {
  if (config_.replay.response_timeout_s <= 0) return 0;
  std::vector<PendingRoute> to_route;
  int requeued = 0;
  {
    std::lock_guard lock(mu_);
    const double now = clock_.now_s();
    std::vector<std::uint64_t> overdue;
    for (const auto& [task_id, task] : dispatched_) {
      const double deadline = task.dispatch_s +
                              config_.replay.response_timeout_s +
                              task.spec.estimated_runtime_s;
      if (now >= deadline) overdue.push_back(task_id);
    }
    for (auto task_id : overdue) {
      auto node = dispatched_.extract(task_id);
      DispatchedTask task = std::move(node.mapped());
      auto eit = executors_.find(task.executor.value);
      if (eit != executors_.end() && eit->second.inflight > 0) {
        --eit->second.inflight;
        if (eit->second.inflight == 0) eit->second.state = ExecState::kIdle;
      }
      if (task.attempts >= config_.replay.max_retries) {
        // Retry budget exhausted while the task sat on an unresponsive
        // executor: fail it permanently so it reaches a terminal state
        // instead of lingering in dispatched_ forever.
        ++counters_.failed;
        if (m_failed_) m_failed_->inc();
        TaskResult result;
        result.task_id = task.spec.id;
        result.executor_id = task.executor;
        result.state = TaskState::kFailed;
        result.exit_code = -1;
        result.stderr_data = "replay timeout: retry budget exhausted";
        result.queue_time_s = task.dispatch_s - task.enqueue_s;
        if (auto iit = instances_.find(task.instance.value);
            iit != instances_.end()) {
          to_route.push_back(
              PendingRoute{task.instance, iit->second, std::move(result)});
        }
        continue;
      }
      ++task.attempts;
      ++counters_.retried;
      if (m_retried_) m_retried_->inc();
      requeue_locked(std::move(task), /*front=*/true);
      ++requeued;
    }
    counters_.dispatched = dispatched_.size();
    if (!overdue.empty()) pump_notifications_locked();
  }
  route_all(to_route);
  return requeued;
}

void Dispatcher::renotify_stale() {
  if (config_.renotify_timeout_s <= 0) return;
  std::lock_guard lock(mu_);
  if (shutdown_) return;
  const double now = clock_.now_s();
  for (auto& [id, entry] : executors_) {
    if (entry.state != ExecState::kNotified || entry.notified_s < 0 ||
        now - entry.notified_s <= config_.renotify_timeout_s) {
      continue;
    }
    // The executor was notified but never pulled: the notification was
    // lost (or the push channel is slow). Send another one.
    entry.notified_s = now;
    if (m_renotifies_) m_renotifies_->inc();
    auto sink = entry.sink;
    const ExecutorId executor_id = entry.id;
    (void)notify_pool_.submit([sink, executor_id] {
      if (sink) sink->notify(executor_id, executor_id.value);
    });
  }
}

std::vector<ExecutorId> Dispatcher::request_release(int count) {
  std::vector<ExecutorId> released;
  std::vector<std::pair<std::shared_ptr<ExecutorSink>, ExecutorId>> to_notify;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, entry] : executors_) {
      if (static_cast<int>(released.size()) >= count) break;
      if (entry.state == ExecState::kIdle && !entry.release_requested) {
        entry.release_requested = true;
        released.push_back(entry.id);
        to_notify.emplace_back(entry.sink, entry.id);
      }
    }
  }
  for (auto& [sink, id] : to_notify) {
    if (sink) sink->notify(id, kReleaseResourceKey);
  }
  return released;
}

void Dispatcher::set_completion_listener(
    std::function<void(const TaskResult&, double)> listener) {
  std::lock_guard lock(mu_);
  completion_listener_ = std::move(listener);
}

void Dispatcher::set_client_sink(std::shared_ptr<ClientSink> sink) {
  std::lock_guard lock(mu_);
  client_sink_ = std::move(sink);
}

Accumulator Dispatcher::overhead_stats() const {
  std::lock_guard lock(mu_);
  return overhead_stats_;
}

}  // namespace falkon::core
