#include "core/dispatcher.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <iterator>

#include "common/logging.h"
#include "common/strings.h"

namespace falkon::core {

namespace {
// Stream-drain frame sizing. The cap bounds the copy done under the
// mailbox lock and the encoded frame; the minimum is the coalescing target
// — a delivering thread streams inline once a full minimum frame is
// queued, smaller tails flush via the notify pool.
constexpr std::size_t kMaxStreamFrameResults = 4096;
constexpr std::size_t kMinStreamFrameResults = 1024;
}  // namespace

wire::StatusReply DispatcherStatus::to_wire() const {
  wire::StatusReply reply;
  reply.submitted_tasks = submitted;
  reply.queued_tasks = queued;
  reply.dispatched_tasks = dispatched;
  reply.completed_tasks = completed;
  reply.failed_tasks = failed;
  reply.retried_tasks = retried;
  reply.suspicions = suspicions;
  reply.false_suspicions = false_suspicions;
  reply.quarantined_tasks = quarantined;
  reply.registered_executors = registered_executors;
  reply.busy_executors = busy_executors;
  reply.idle_executors = idle_executors;
  return reply;
}

Dispatcher::Dispatcher(Clock& clock, DispatcherConfig config,
                       std::unique_ptr<DispatchPolicy> policy)
    : clock_(clock),
      config_(config),
      policy_(policy ? std::move(policy)
                     : std::make_unique<NextAvailablePolicy>()),
      policy_head_only_(policy_->selects_queue_head()),
      policy_first_idle_(policy_->selects_first_idle()),
      notify_pool_(static_cast<std::size_t>(std::max(1, config.notify_threads)),
                   "notify") {
  shard_count_ = static_cast<std::size_t>(std::max(1, config_.executor_shards));
  shards_ = std::make_unique<Shard[]>(shard_count_);
  if (config_.obs != nullptr) {
    obs::Registry& reg = config_.obs->registry();
    tracer_ = &config_.obs->tracer();
    m_submitted_ = &reg.counter("falkon.dispatcher.tasks_submitted");
    m_dispatched_ = &reg.counter("falkon.dispatcher.tasks_dispatched");
    m_completed_ = &reg.counter("falkon.dispatcher.tasks_completed");
    m_failed_ = &reg.counter("falkon.dispatcher.tasks_failed");
    m_retried_ = &reg.counter("falkon.dispatcher.tasks_retried");
    m_notifications_ = &reg.counter("falkon.dispatcher.notifications");
    m_heartbeats_ = &reg.counter("falkon.dispatcher.heartbeats");
    m_suspicions_ = &reg.counter("falkon.dispatcher.suspicions");
    m_false_suspicions_ = &reg.counter("falkon.dispatcher.false_suspicions");
    m_quarantined_ = &reg.counter("falkon.dispatcher.tasks_quarantined");
    m_renotifies_ = &reg.counter("falkon.dispatcher.renotifies");
    m_sweeps_ = &reg.counter("falkon.dispatcher.sweeps");
    m_queue_depth_ = &reg.gauge("falkon.dispatcher.queue_depth");
    m_queue_time_ = &reg.histogram("falkon.task.queue_time_s", 1e-6, 1e4);
    m_overhead_ = &reg.histogram("falkon.task.overhead_s", 1e-6, 1e4);
    m_bundle_size_ = &reg.histogram("falkon.dispatcher.bundle_size", 1.0, 4096.0);
    m_lock_wait_ = &reg.histogram("falkon.dispatcher.lock_wait_s", 1e-9, 1.0);
    m_route_batches_ = &reg.counter("falkon.dispatcher.route_batches");
    m_route_results_ = &reg.counter("falkon.dispatcher.route_results");
    m_route_batch_size_ =
        &reg.histogram("falkon.dispatcher.route_batch_size", 1.0, 4096.0);
    m_stream_pushed_ = &reg.counter("falkon.dispatcher.stream.results_pushed");
    m_stream_acked_ = &reg.counter("falkon.dispatcher.stream.results_acked");
    m_stream_push_failures_ =
        &reg.counter("falkon.dispatcher.stream.push_failures");
    m_data_stale_routes_ = &reg.counter("falkon.data.stale_routes");
    m_data_overwait_ = &reg.counter("falkon.data.locality_overwait");
    m_data_deferrals_ = &reg.counter("falkon.data.locality_deferrals");
    m_data_digests_ = &reg.counter("falkon.data.digests_applied");
    m_data_evictions_ = &reg.counter("falkon.data.evictions");
  }
  if (config_.sweep_interval_s > 0) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
}

Dispatcher::~Dispatcher() { shutdown(); }

void Dispatcher::shutdown() {
  if (shutdown_.exchange(true)) return;
  {
    std::lock_guard lock(inst_mu_);
    for (auto& [id, instance] : instances_) {
      std::lock_guard ilock(instance->mu);
      instance->open = false;
      instance->cv.notify_all();
    }
  }
  if (sweeper_.joinable()) {
    {
      std::lock_guard lock(sweep_mu_);
      sweep_stop_ = true;
    }
    sweep_cv_.notify_all();
    sweeper_.join();
  }
  notify_pool_.shutdown();
}

void Dispatcher::sweeper_loop() {
  std::unique_lock lock(sweep_mu_);
  for (;;) {
    // Model-time interval -> real wait for scaled clocks; the cv makes
    // shutdown prompt regardless of the interval.
    const double real_interval = config_.sweep_interval_s / clock_.rate();
    sweep_cv_.wait_for(lock, std::chrono::duration<double>(real_interval),
                       [&] { return sweep_stop_; });
    if (sweep_stop_) return;
    lock.unlock();
    sweep_once();
    lock.lock();
  }
}

void Dispatcher::sweep_once() {
  if (shutdown_.load()) return;
  if (m_sweeps_) m_sweeps_->inc();
  (void)check_replays();
  (void)check_liveness();
  renotify_stale();
}

bool Dispatcher::adopt_external_sweeper() {
  if (config_.sweep_interval_s <= 0) return false;
  if (sweeper_.joinable()) {
    {
      std::lock_guard lock(sweep_mu_);
      sweep_stop_ = true;
    }
    sweep_cv_.notify_all();
    sweeper_.join();
    sweeper_ = std::thread();
    std::lock_guard lock(sweep_mu_);
    sweep_stop_ = false;  // allow resume_internal_sweeper later
  }
  return true;
}

void Dispatcher::resume_internal_sweeper() {
  if (config_.sweep_interval_s <= 0 || shutdown_.load()) return;
  if (sweeper_.joinable()) return;
  sweeper_ = std::thread([this] { sweeper_loop(); });
}

double Dispatcher::sweep_interval_real_s() const {
  return config_.sweep_interval_s / clock_.rate();
}

// ---------------------------------------------------------------- registry

Dispatcher::Shard& Dispatcher::shard_for(std::uint64_t executor_value) {
  return shards_[executor_value % shard_count_];
}

std::shared_ptr<Dispatcher::ExecutorEntry> Dispatcher::find_entry(
    std::uint64_t executor_value) {
  Shard& shard = shard_for(executor_value);
  std::lock_guard lock(shard.mu);
  auto it = shard.entries.find(executor_value);
  return it == shard.entries.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Dispatcher::ExecutorEntry>>
Dispatcher::snapshot_entries() {
  std::vector<std::shared_ptr<ExecutorEntry>> out;
  out.reserve(registered_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard lock(shards_[i].mu);
    for (auto& [id, entry] : shards_[i].entries) out.push_back(entry);
  }
  return out;
}

std::unique_lock<std::mutex> Dispatcher::lock_entry(ExecutorEntry& entry) {
  if (m_lock_wait_ == nullptr) return std::unique_lock(entry.mu);
  std::unique_lock lock(entry.mu, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  const auto t0 = std::chrono::steady_clock::now();
  lock.lock();
  m_lock_wait_->record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
  return lock;
}

void Dispatcher::idle_erase(std::uint64_t executor_value) {
  if (!policy_first_idle_) return;
  std::lock_guard lock(idle_mu_);
  idle_set_.erase(executor_value);
}

void Dispatcher::idle_insert(std::uint64_t executor_value) {
  if (!policy_first_idle_) return;
  std::lock_guard lock(idle_mu_);
  idle_set_.insert(executor_value);
}

void Dispatcher::set_state_locked(ExecutorEntry& entry, ExecState next) {
  if (entry.state == next) return;
  if (entry.state == ExecState::kBusy) {
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (next == ExecState::kBusy) {
    busy_.fetch_add(1, std::memory_order_relaxed);
  }
  entry.state = next;
  if (policy_first_idle_) {
    if (next == ExecState::kIdle && !entry.removed &&
        !entry.release_requested) {
      idle_insert(entry.id.value);
    } else {
      idle_erase(entry.id.value);
    }
  }
}

void Dispatcher::cache_insert_locked(ExecutorEntry& entry,
                                     const std::string& object) {
  if (entry.cached_objects != nullptr &&
      entry.cached_objects->count(object) > 0) {
    return;
  }
  auto next = entry.cached_objects
                  ? std::make_shared<std::unordered_set<std::string>>(
                        *entry.cached_objects)
                  : std::make_shared<std::unordered_set<std::string>>();
  next->insert(object);
  entry.cached_objects = std::move(next);
  holders_add(object, entry.id.value);
}

void Dispatcher::cache_erase_locked(ExecutorEntry& entry,
                                    const std::string& object) {
  if (entry.cached_objects == nullptr ||
      entry.cached_objects->count(object) == 0) {
    return;
  }
  auto next = std::make_shared<std::unordered_set<std::string>>(
      *entry.cached_objects);
  next->erase(object);
  entry.cached_objects = std::move(next);
  holders_remove(object, entry.id.value);
}

void Dispatcher::holders_add(const std::string& object,
                             std::uint64_t executor_value) {
  std::lock_guard lock(data_mu_);
  holders_[object].insert(executor_value);
}

void Dispatcher::holders_remove(const std::string& object,
                                std::uint64_t executor_value) {
  std::lock_guard lock(data_mu_);
  auto it = holders_.find(object);
  if (it == holders_.end()) return;
  it->second.erase(executor_value);
  if (it->second.empty()) holders_.erase(it);
}

std::string Dispatcher::alternate_holder(const std::string& object,
                                         std::uint64_t exclude) {
  std::lock_guard lock(data_mu_);
  auto it = holders_.find(object);
  if (it == holders_.end()) return {};
  for (const auto value : it->second) {
    if (value == exclude) continue;
    auto eit = data_endpoints_.find(value);
    if (eit != data_endpoints_.end() && !eit->second.empty()) {
      return eit->second;
    }
  }
  return {};
}

ExecutorCandidate Dispatcher::candidate_of(const ExecutorEntry& entry) {
  ExecutorCandidate candidate;
  candidate.id = entry.id;
  // Snapshot of the copy-on-write cache set: the probe stays valid after
  // the entry lock is released.
  candidate.has_cached = [objects = entry.cached_objects](
                             const std::string& object) {
    return objects != nullptr && objects->count(object) > 0;
  };
  return candidate;
}

Error Dispatcher::unknown_executor(std::uint64_t executor_value) {
  bool was_suspected;
  {
    std::lock_guard lock(suspect_mu_);
    was_suspected = suspected_.erase(executor_value) > 0;
  }
  if (was_suspected) {
    // The "dead" executor spoke again: the detector was wrong.
    n_false_suspicions_.fetch_add(1, std::memory_order_relaxed);
    if (m_false_suspicions_) m_false_suspicions_->inc();
  }
  return Error{ErrorCode::kNotFound, "executor not registered"};
}

// ------------------------------------------------------------------ client

Result<InstanceId> Dispatcher::create_instance(ClientId client) {
  InstanceId id;
  {
    std::lock_guard lock(inst_mu_);
    if (shutdown_.load(std::memory_order_relaxed)) {
      return make_error(ErrorCode::kClosed, "dispatcher shut down");
    }
    id = instance_ids_.next();
    auto instance = std::make_shared<Instance>();
    instance->client = client;
    instances_[id.value] = std::move(instance);
    if (config_.journal) config_.journal->on_instance_created(id, client);
  }
  // Durability barrier outside the lock: the instance id handed back must
  // survive a failover (async journals drain their queue here).
  if (config_.journal) config_.journal->barrier();
  return id;
}

Status Dispatcher::destroy_instance(InstanceId instance_id) {
  std::shared_ptr<Instance> instance;
  {
    std::lock_guard lock(inst_mu_);
    auto it = instances_.find(instance_id.value);
    if (it == instances_.end()) {
      return make_error(ErrorCode::kNotFound, "no such instance");
    }
    instance = it->second;
    instances_.erase(it);
    // Drop this instance's queued tasks; in-flight ones will be discarded
    // at delivery time because the instance is gone.
    std::lock_guard qlock(queue_mu_);
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const QueuedTask& task) {
                                  return task.instance == instance_id;
                                }),
                 queue_.end());
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
    if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
    if (config_.journal) config_.journal->on_instance_destroyed(instance_id);
  }
  // Prefetched (outboxed) tasks of this instance are queued work too —
  // purge them the same way. Submits for this instance now fail, so no new
  // ones can appear afterwards.
  for (auto& entry : snapshot_entries()) {
    std::lock_guard elock(entry->mu);
    auto& outbox = entry->outbox;
    const std::size_t before = outbox.size();
    outbox.erase(std::remove_if(outbox.begin(), outbox.end(),
                                [&](const QueuedTask& task) {
                                  return task.instance == instance_id;
                                }),
                 outbox.end());
    if (before != outbox.size()) {
      outboxed_.fetch_sub(before - outbox.size(), std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard ilock(instance->mu);
    instance->open = false;
  }
  instance->cv.notify_all();
  return ok_status();
}

Result<std::uint64_t> Dispatcher::submit(InstanceId instance_id,
                                         std::vector<TaskSpec> tasks,
                                         std::uint64_t submit_seq) {
  {
    std::lock_guard lock(inst_mu_);
    if (shutdown_.load(std::memory_order_relaxed)) {
      return make_error(ErrorCode::kClosed, "dispatcher shut down");
    }
    auto it = instances_.find(instance_id.value);
    if (it == instances_.end()) {
      return make_error(ErrorCode::kNotFound, "no such instance");
    }
    // Validate before any mutation so a bad bundle never half-enqueues (and
    // never reaches the journal).
    for (const auto& spec : tasks) {
      if (!spec.id.valid()) {
        return make_error(ErrorCode::kInvalidArgument, "task without id");
      }
    }
    if (submit_seq != 0) {
      if (submit_seq <= it->second->last_submit_seq) {
        // Duplicate of a submit already accepted (the client retried after
        // a failover ate its reply): acknowledge idempotently, enqueue
        // nothing — the tasks are already in the queue or the journal.
        return static_cast<std::uint64_t>(tasks.size());
      }
      it->second->last_submit_seq = submit_seq;
    }
    const double now = clock_.now_s();
    std::lock_guard qlock(queue_mu_);
    // Journal before the tasks become visible to get_work (see the ordering
    // contract in core/journal.h).
    if (config_.journal) {
      config_.journal->on_submit(instance_id, submit_seq, tasks);
    }
    for (auto& spec : tasks) {
      QueuedTask task;
      task.instance = instance_id;
      task.spec = std::move(spec);
      task.enqueue_s = now;
      if (tracer_) tracer_->instant(task.spec.id, obs::Stage::kSubmit, now);
      queue_.push_back(std::move(task));
    }
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
    if (m_submitted_) {
      m_submitted_->inc(tasks.size());
      m_queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  // Durability barrier outside inst_mu_/queue_mu_: the submit ack implies
  // the RecSubmit reached the WAL even when journaling is asynchronous.
  if (config_.journal) config_.journal->barrier();
  const auto accepted = static_cast<std::uint64_t>(tasks.size());
  n_submitted_.fetch_add(accepted, std::memory_order_relaxed);
  pump_notifications();
  return accepted;
}

Result<std::vector<TaskResult>> Dispatcher::wait_results(
    InstanceId instance_id, std::uint32_t max_results, double timeout_s) {
  std::shared_ptr<Instance> instance;
  {
    std::lock_guard lock(inst_mu_);
    auto it = instances_.find(instance_id.value);
    if (it == instances_.end()) {
      return make_error(ErrorCode::kNotFound, "no such instance");
    }
    instance = it->second;
  }
  if (max_results == 0) max_results = 1;
  // Model-time timeout -> real wait for scaled clocks.
  const double real_timeout = timeout_s / clock_.rate();
  std::unique_lock ilock(instance->mu);
  instance->cv.wait_for(
      ilock, std::chrono::duration<double>(real_timeout),
      [&] { return !instance->results.empty() || !instance->open; });
  // Bulk-move the drained range out of the mailbox: one reserve + one
  // range move + one erase instead of a push_back/pop_front pair per
  // result under the mailbox lock.
  const std::size_t take =
      std::min<std::size_t>(instance->results.size(), max_results);
  std::vector<TaskResult> out;
  out.reserve(take);
  const auto first = instance->results.begin();
  const auto last = first + static_cast<std::ptrdiff_t>(take);
  out.assign(std::make_move_iterator(first), std::make_move_iterator(last));
  instance->results.erase(first, last);
  // Journal the pick-up while still holding the mailbox lock: after
  // recovery these results must not be re-delivered (docs/HA.md).
  if (config_.journal && !out.empty()) {
    std::vector<TaskId> ids;
    ids.reserve(out.size());
    for (const auto& result : out) ids.push_back(result.task_id);
    config_.journal->on_delivered(instance_id, ids);
  }
  if (take > 0 && instance->streaming) {
    // A poll raced the push stream: whatever the drain had pushed may just
    // have been consumed here instead. Reset the regime — the surviving
    // mailbox re-streams under fresh cursor positions and the client's
    // task-id dedup absorbs any overlap. Loss is impossible either way:
    // results only leave the mailbox here (journaled above) or on ack.
    instance->streamed_prefix = 0;
    instance->stream_acked = instance->stream_pushed;
    ++instance->stream_epoch;
    if (!instance->results.empty()) {
      schedule_drain_locked(instance_id, instance);
    }
  }
  if (out.empty() && !instance->open) {
    return make_error(ErrorCode::kClosed, "instance destroyed");
  }
  return out;
}

Result<std::uint64_t> Dispatcher::subscribe_results(InstanceId instance_id,
                                                    std::uint64_t ack_seq) {
  std::shared_ptr<Instance> instance;
  {
    std::lock_guard lock(inst_mu_);
    auto it = instances_.find(instance_id.value);
    if (it == instances_.end()) {
      return make_error(ErrorCode::kNotFound, "no such instance");
    }
    instance = it->second;
  }
  std::uint64_t cursor = 0;
  {
    std::lock_guard ilock(instance->mu);
    if (ack_seq == 0) {
      // (Re)subscribe: start a fresh streaming regime. The whole backlog —
      // including results pushed under the previous regime — re-streams
      // from seq 1; the client resets its cursor on subscribe and dedups
      // re-deliveries by task id.
      instance->streaming = true;
      instance->streamed_prefix = 0;
      instance->stream_pushed = 0;
      instance->stream_acked = 0;
      ++instance->stream_epoch;
    } else {
      // Cumulative acknowledgement. Clamped to [acked, pushed] so a stale
      // or duplicate ack can never pop more than was actually streamed in
      // this regime. (Clients serialise SubscribeResults calls per
      // instance, so an ack never overtakes the subscribe that reset the
      // regime.)
      const std::uint64_t acked =
          std::min(std::max(ack_seq, instance->stream_acked),
                   instance->stream_pushed);
      const std::uint64_t delta = acked - instance->stream_acked;
      const std::size_t pop = static_cast<std::size_t>(
          std::min<std::uint64_t>(delta, instance->streamed_prefix));
      if (pop > 0) {
        // Journal while still holding the mailbox lock, exactly like
        // wait_results: an acknowledged result must never be re-delivered
        // after failover (docs/HA.md).
        if (config_.journal) {
          std::vector<TaskId> ids;
          ids.reserve(pop);
          for (std::size_t i = 0; i < pop; ++i) {
            ids.push_back(instance->results[i].task_id);
          }
          config_.journal->on_delivered(instance_id, ids);
        }
        const auto first = instance->results.begin();
        instance->results.erase(first, first + static_cast<std::ptrdiff_t>(pop));
        instance->streamed_prefix -= pop;
        if (m_stream_acked_) m_stream_acked_->inc(pop);
      }
      instance->stream_acked = acked;
    }
    cursor = instance->stream_pushed;
    if (instance->streaming &&
        instance->streamed_prefix < instance->results.size()) {
      schedule_drain_locked(instance_id, instance);
    }
  }
  return cursor;
}

void Dispatcher::restore(const DispatcherImage& image) {
  const double now = clock_.now_s();
  std::lock_guard lock(inst_mu_);
  std::lock_guard qlock(queue_mu_);
  for (const auto& inst : image.instances) {
    auto instance = std::make_shared<Instance>();
    instance->client = inst.client;
    instance->last_submit_seq = inst.last_submit_seq;
    // Undelivered results go back into the mailbox; the client-side dedup
    // set absorbs any the old primary managed to deliver after journaling.
    for (const auto& result : inst.mailbox) {
      instance->results.push_back(result);
    }
    instances_[inst.id.value] = std::move(instance);
  }
  instance_ids_.reset(image.next_instance_id);
  for (const auto& queued : image.queue) {
    QueuedTask task;
    task.instance = queued.instance;
    task.spec = queued.spec;
    task.enqueue_s = now;
    task.attempts = queued.attempts;
    queue_.push_back(std::move(task));
  }
  queue_size_.store(queue_.size(), std::memory_order_relaxed);
  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
  n_submitted_.store(image.submitted, std::memory_order_relaxed);
  n_completed_.store(image.completed, std::memory_order_relaxed);
  n_failed_.store(image.failed, std::memory_order_relaxed);
  n_retried_.store(image.retried, std::memory_order_relaxed);
  n_quarantined_.store(image.quarantined, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- executor

Result<ExecutorId> Dispatcher::register_executor(
    const wire::RegisterRequest& request, std::shared_ptr<ExecutorSink> sink) {
  if (shutdown_.load(std::memory_order_relaxed)) {
    return make_error(ErrorCode::kClosed, "dispatcher shut down");
  }
  ExecutorId id;
  {
    std::lock_guard lock(ids_mu_);
    id = executor_ids_.next();
  }
  auto entry = std::make_shared<ExecutorEntry>();
  entry->id = id;
  entry->info = request;
  entry->sink = std::move(sink);
  entry->registered_s = clock_.now_s();
  entry->last_heartbeat_s = entry->registered_s;
  {
    Shard& shard = shard_for(id.value);
    std::lock_guard lock(shard.mu);
    shard.entries.emplace(id.value, std::move(entry));
  }
  registered_.fetch_add(1, std::memory_order_relaxed);
  // Registration-time cache digest (data diffusion): seed the mirror and
  // P2P endpoint before the first notification can route on this executor.
  if (request.data_port != 0 || !request.cached.empty()) {
    apply_digest(id, /*generation=*/0, request.data_port, request.cached);
  }
  idle_insert(id.value);  // fresh entries start idle
  pump_notifications();
  return id;
}

Dispatcher::QueuedTask Dispatcher::to_queued(DispatchedTask task) {
  QueuedTask queued;
  queued.instance = task.instance;
  queued.spec = std::move(task.spec);
  queued.enqueue_s = task.enqueue_s;
  queued.attempts = task.attempts;
  queued.killers = std::move(task.killers);
  return queued;
}

void Dispatcher::requeue_task(QueuedTask task, bool front) {
  std::lock_guard qlock(queue_mu_);
  if (front) {
    queue_.push_front(std::move(task));
  } else {
    queue_.push_back(std::move(task));
  }
  queue_size_.store(queue_.size(), std::memory_order_relaxed);
  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
}

void Dispatcher::drain_outbox_locked(ExecutorEntry& entry) {
  if (entry.outbox.empty()) return;
  std::lock_guard qlock(queue_mu_);
  // Back-to-front so the outbox order is preserved at the queue head.
  while (!entry.outbox.empty()) {
    queue_.push_front(std::move(entry.outbox.back()));
    entry.outbox.pop_back();
    outboxed_.fetch_sub(1, std::memory_order_relaxed);
  }
  queue_size_.store(queue_.size(), std::memory_order_relaxed);
  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
}

bool Dispatcher::remove_executor(std::uint64_t executor_value,
                                 const std::string& reason, bool blame,
                                 std::vector<PendingRoute>& to_route) {
  std::shared_ptr<ExecutorEntry> entry;
  {
    Shard& shard = shard_for(executor_value);
    std::lock_guard lock(shard.mu);
    auto it = shard.entries.find(executor_value);
    if (it == shard.entries.end()) return false;
    entry = std::move(it->second);
    shard.entries.erase(it);
  }
  registered_.fetch_sub(1, std::memory_order_relaxed);
  std::size_t requeued = 0;
  {
    std::lock_guard elock(entry->mu);
    entry->removed = true;
    // Purge the data-diffusion index: a dead executor must not be offered
    // as a P2P source or a locality target (I11).
    {
      std::lock_guard dlock(data_mu_);
      if (entry->cached_objects != nullptr) {
        for (const auto& object : *entry->cached_objects) {
          auto it = holders_.find(object);
          if (it == holders_.end()) continue;
          it->second.erase(executor_value);
          if (it->second.empty()) holders_.erase(it);
        }
      }
      data_endpoints_.erase(executor_value);
    }
    // set_state_locked early-returns when the entry was already idle, so
    // drop it from the idle set explicitly — removed executors must never
    // be notification candidates.
    idle_erase(executor_value);
    set_state_locked(*entry, ExecState::kIdle);
    // Prefetched-but-never-sent work goes straight back to the queue head.
    drain_outbox_locked(*entry);
    // Requeue anything in flight on this executor; under `blame` the death
    // is charged to the tasks it held, and a task that has now killed
    // config_.quarantine_threshold distinct executors is poison — fail it
    // permanently instead of handing it to yet another victim.
    for (auto& [task_id, dispatched] : entry->dispatched) {
      DispatchedTask task = std::move(dispatched);
      dispatched_count_.fetch_sub(1, std::memory_order_relaxed);
      if (blame && std::find(task.killers.begin(), task.killers.end(),
                             executor_value) == task.killers.end()) {
        task.killers.push_back(executor_value);
      }
      if (blame && config_.quarantine_threshold > 0 &&
          static_cast<int>(task.killers.size()) >=
              config_.quarantine_threshold) {
        n_quarantined_.fetch_add(1, std::memory_order_relaxed);
        n_failed_.fetch_add(1, std::memory_order_relaxed);
        if (m_quarantined_) m_quarantined_->inc();
        if (m_failed_) m_failed_->inc();
        LOG_WARN("dispatcher",
                 "task %llu quarantined after killing %zu executors",
                 static_cast<unsigned long long>(task.spec.id.value),
                 task.killers.size());
        TaskResult result;
        result.task_id = task.spec.id;
        result.executor_id = ExecutorId{executor_value};
        result.state = TaskState::kFailed;
        result.exit_code = -1;
        result.stderr_data = "quarantined: poison task killed " +
                             std::to_string(task.killers.size()) +
                             " executors";
        result.queue_time_s = task.dispatch_s - task.enqueue_s;
        if (config_.journal) {
          config_.journal->on_complete(task.instance, result,
                                       /*quarantined=*/true);
        }
        to_route.push_back(PendingRoute{task.instance, std::move(result)});
        continue;
      }
      if (config_.journal) {
        config_.journal->on_requeue({task.spec.id}, /*retry=*/false);
      }
      requeue_task(to_queued(std::move(task)), /*front=*/true);
      ++requeued;
    }
    entry->dispatched.clear();
    entry->inflight = 0;
  }
  // Outside the entry lock: let the transport drop per-executor state
  // (push subscription, unretired bundle_seq) no matter which path removed
  // the executor — orderly deregister, failure detector, or poison blame.
  if (entry->sink) entry->sink->on_removed(ExecutorId{executor_value});
  LOG_DEBUG("dispatcher", "executor %llu deregistered (%s), %zu tasks requeued",
            static_cast<unsigned long long>(executor_value), reason.c_str(),
            requeued);
  return true;
}

Status Dispatcher::deregister_executor(ExecutorId executor_id,
                                       const std::string& reason) {
  // An orderly deregistration never blames the executor's tasks, so no
  // quarantine results can be produced here.
  std::vector<PendingRoute> to_route;
  if (!remove_executor(executor_id.value, reason, /*blame=*/false, to_route)) {
    return make_error(ErrorCode::kNotFound, "no such executor");
  }
  route_all(to_route);
  pump_notifications();
  return ok_status();
}

Status Dispatcher::heartbeat(ExecutorId executor_id) {
  if (m_heartbeats_) m_heartbeats_->inc();
  auto entry = find_entry(executor_id.value);
  if (entry == nullptr) return unknown_executor(executor_id.value);
  {
    std::lock_guard elock(entry->mu);
    if (entry->removed) return unknown_executor(executor_id.value);
    entry->last_heartbeat_s = clock_.now_s();
  }
  // Locality-withheld heads (data-aware policies only) wait for their
  // advertised holder; once overdue, any executor may take them — but a
  // deferred executor sits in its notification wait with nothing pending.
  // Heartbeats are the fleet's periodic pulse, so use them to re-offer an
  // overdue head instead of letting it ride until the next submit/delivery.
  if (!policy_head_only_ && config_.max_locality_wait_s > 0) {
    bool overdue = false;
    {
      std::lock_guard qlock(queue_mu_);
      overdue = !queue_.empty() &&
                clock_.now_s() - queue_.front().enqueue_s >
                    config_.max_locality_wait_s;
    }
    if (overdue) pump_notifications();
  }
  return ok_status();
}

int Dispatcher::check_liveness() {
  if (config_.heartbeat_timeout_s <= 0) return 0;
  const double now = clock_.now_s();
  std::vector<std::uint64_t> dead;
  for (auto& entry : snapshot_entries()) {
    std::lock_guard elock(entry->mu);
    if (!entry->removed &&
        now - entry->last_heartbeat_s > config_.heartbeat_timeout_s) {
      dead.push_back(entry->id.value);
    }
  }
  std::vector<PendingRoute> to_route;
  int removed = 0;
  for (auto id : dead) {
    {
      std::lock_guard lock(suspect_mu_);
      suspected_.insert(id);
    }
    n_suspicions_.fetch_add(1, std::memory_order_relaxed);
    if (m_suspicions_) m_suspicions_->inc();
    (void)remove_executor(id, "heartbeat timeout", /*blame=*/true, to_route);
    ++removed;
  }
  if (removed > 0) pump_notifications();
  route_all(to_route);
  return removed;
}

// ---------------------------------------------------------------- dispatch

void Dispatcher::pump_notifications() {
  if (shutdown_.load(std::memory_order_relaxed)) return;
  // Offer the queue head to idle executors, chosen by the dispatch policy,
  // until we run out of either queued tasks or idle executors. `budget`
  // bounds the number of notifications to the queue depth.
  std::size_t budget;
  {
    std::lock_guard qlock(queue_mu_);
    budget = queue_.size();
  }

  if (policy_first_idle_) {
    // Fast path for first-idle policies (next-available): pop the newest
    // idle executor from the ordered set instead of snapshotting, sorting
    // and lock-probing the whole registry per notification — the full scan
    // is O(fleet log fleet) per task, which collapses throughput once
    // hundreds of executors drain a deep queue.
    while (budget > 0) {
      TaskId head_id;
      {
        std::lock_guard qlock(queue_mu_);
        if (queue_.empty()) return;
        budget = std::min(budget, queue_.size());
        head_id = queue_.front().spec.id;
      }
      std::uint64_t candidate;
      {
        std::lock_guard ilock(idle_mu_);
        if (idle_set_.empty()) return;
        auto it = idle_set_.begin();
        candidate = *it;
        idle_set_.erase(it);
      }
      auto entry = find_entry(candidate);
      if (entry == nullptr) continue;  // removed after it was popped
      {
        std::lock_guard elock(entry->mu);
        if (entry->removed || entry->state != ExecState::kIdle ||
            entry->release_requested) {
          // Lost the race to an exchange; the set is already consistent
          // (set_state_locked re-inserts when it goes idle again).
          continue;
        }
        set_state_locked(*entry, ExecState::kNotified);
        entry->notified_s = clock_.now_s();
      }
      auto sink = entry->sink;
      const ExecutorId id = entry->id;
      if (m_notifications_) m_notifications_->inc();
      if (tracer_) {
        tracer_->instant(head_id, obs::Stage::kNotify, clock_.now_s(),
                         id.value);
      }
      --budget;
      if (config_.fault != nullptr &&
          config_.fault->sample(fault::Site::kDispatcherNotify).action ==
              fault::Action::kDrop) {
        continue;
      }
      (void)notify_pool_.submit([sink, id] {
        if (sink) sink->notify(id, id.value);
      });
    }
    return;
  }

  while (budget > 0) {
    TaskSpec head;
    {
      std::lock_guard qlock(queue_mu_);
      if (queue_.empty()) return;
      budget = std::min(budget, queue_.size());
      head = queue_.front().spec;
    }
    // Collect idle candidates one entry lock at a time (never two at once).
    // Newest registration first (LIFO): keeps long-idle executors idle so
    // the distributed release policy can reclaim them, and preserves the
    // seed implementation's observable notification order.
    auto entries = snapshot_entries();
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return b->id < a->id; });
    std::vector<ExecutorCandidate> idle;
    std::vector<std::shared_ptr<ExecutorEntry>> idle_entries;
    for (auto& entry : entries) {
      std::lock_guard elock(entry->mu);
      if (!entry->removed && entry->state == ExecState::kIdle &&
          !entry->release_requested) {
        idle.push_back(candidate_of(*entry));
        idle_entries.push_back(entry);
      }
    }
    if (idle.empty()) return;
    const std::size_t pick =
        std::min(policy_->select(head, idle), idle.size() - 1);
    ExecutorEntry& chosen = *idle_entries[pick];
    {
      std::lock_guard elock(chosen.mu);
      if (chosen.removed || chosen.state != ExecState::kIdle ||
          chosen.release_requested) {
        // Lost the race to another exchange; rescan without spending budget.
        continue;
      }
      set_state_locked(chosen, ExecState::kNotified);
      chosen.notified_s = clock_.now_s();
    }
    auto sink = chosen.sink;
    const ExecutorId id = chosen.id;
    if (m_notifications_) m_notifications_->inc();
    if (tracer_) {
      // Attribute the notification to the queue head — the task that made
      // the dispatcher wake this executor (it may end up pulling others).
      tracer_->instant(head.id, obs::Stage::kNotify, clock_.now_s(), id.value);
    }
    --budget;
    if (config_.fault != nullptr &&
        config_.fault->sample(fault::Site::kDispatcherNotify).action ==
            fault::Action::kDrop) {
      // Lost notification: the executor stays kNotified with no wake-up;
      // only the stale-notification resend (renotify_timeout_s) or a
      // piggy-backed ack can recover it.
      continue;
    }
    // The notification itself happens on the engine's thread pool {3}.
    (void)notify_pool_.submit([sink, id] {
      if (sink) sink->notify(id, id.value);
    });
  }
}

void Dispatcher::dispatch_one_locked(ExecutorEntry& entry, QueuedTask task,
                                     double now, std::vector<TaskSpec>& out) {
  DispatchedTask dispatched;
  dispatched.instance = task.instance;
  dispatched.executor = entry.id;
  dispatched.enqueue_s = task.enqueue_s;
  dispatched.dispatch_s = now;
  dispatched.attempts = task.attempts;
  dispatched.killers = std::move(task.killers);
  // Data-diffusion routing stamp: tell the executor whether we routed it
  // here because its digest advertises the input, and name an alternate
  // holder it can fetch from peer-to-peer on a (stale-digest) miss.
  if (!task.spec.data_object.empty()) {
    task.spec.expect_cached =
        entry.cached_objects != nullptr &&
        entry.cached_objects->count(task.spec.data_object) > 0;
    task.spec.data_source =
        alternate_holder(task.spec.data_object, entry.id.value);
  }
  dispatched.spec = task.spec;
  const std::uint64_t task_id = task.spec.id.value;
  if (tracer_) {
    tracer_->record(task.spec.id, obs::Stage::kQueued, task.enqueue_s, now);
    tracer_->instant(task.spec.id, obs::Stage::kGetWork, now, entry.id.value);
  }
  if (m_queue_time_) m_queue_time_->record(now - task.enqueue_s);
  out.push_back(std::move(task.spec));
  entry.dispatched[task_id] = std::move(dispatched);
  dispatched_count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TaskSpec> Dispatcher::take_work_entry_locked(ExecutorEntry& entry,
                                                         std::uint32_t max_tasks,
                                                         bool adaptive) {
  std::uint32_t target;
  if (adaptive) {
    // Size the bundle from queue pressure, but only split the backlog
    // across as many executors as full bundles warrant. Dividing by the
    // whole registered fleet shreds a shallow queue into slivers: 5,000
    // queued tasks over 256 executors is a 19-task bundle, ~10× the RPC
    // exchanges (and context switches) of the 16-executor run for the
    // same workload. Engaging ceil(depth / cap) executors keeps bundles
    // at the cap until the backlog genuinely spans the fleet, at which
    // point this reduces to the even depth/registered share. Fairness
    // for long tasks is still bounded by max_bundle_runtime_s below.
    const auto depth =
        static_cast<std::uint64_t>(queue_size_.load(std::memory_order_relaxed)) +
        entry.outbox.size();
    const auto executors = std::max<std::uint32_t>(
        1, registered_.load(std::memory_order_relaxed));
    const std::uint64_t cap = std::max<std::uint32_t>(
        1, config_.max_adaptive_bundle);
    const std::uint64_t engaged =
        std::clamp<std::uint64_t>((depth + cap - 1) / cap, 1, executors);
    target = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(depth / engaged, 1, cap));
  } else {
    target = std::min(max_tasks, config_.max_tasks_per_dispatch);
    if (target == 0) target = 1;
  }
  const double now = clock_.now_s();
  const double budget = config_.max_bundle_runtime_s;
  std::vector<TaskSpec> out;
  out.reserve(std::min<std::size_t>(target, 256));
  double bundle_runtime = 0.0;
  bool budget_hit = false;

  // Serve prefetched tasks first: they were claimed for this executor on a
  // previous exchange, so this path never touches queue_mu_.
  while (out.size() < target && !entry.outbox.empty()) {
    const double est = entry.outbox.front().spec.estimated_runtime_s;
    if (budget > 0 && !out.empty() && bundle_runtime + est > budget) {
      budget_hit = true;
      break;
    }
    QueuedTask task = std::move(entry.outbox.front());
    entry.outbox.pop_front();
    outboxed_.fetch_sub(1, std::memory_order_relaxed);
    bundle_runtime += est;
    dispatch_one_locked(entry, std::move(task), now, out);
  }

  if (!budget_hit && out.size() < target) {
    std::lock_guard qlock(queue_mu_);
    ExecutorCandidate self;
    if (!policy_head_only_) self = candidate_of(entry);
    while (out.size() < target && !queue_.empty()) {
      // Let the policy pick a task from a lookahead window (data-aware
      // scheduling); head-of-queue policies skip the window entirely.
      std::size_t pick = 0;
      if (!policy_head_only_) {
        std::vector<const TaskSpec*> window;
        const std::size_t window_size = std::min<std::size_t>(queue_.size(), 64);
        window.reserve(window_size);
        for (std::size_t i = 0; i < window_size; ++i) {
          window.push_back(&queue_[i].spec);
        }
        pick = std::min(policy_->select_task(self, window), window_size - 1);
        const bool head_overdue =
            config_.max_locality_wait_s > 0 &&
            now - queue_.front().enqueue_s > config_.max_locality_wait_s;
        if (pick == 0 && !head_overdue && config_.max_locality_wait_s > 0 &&
            !queue_.front().spec.data_object.empty()) {
          // Good-cache-compute withhold: the head is a young data task and
          // this executor was picked only as a fallback. If another live
          // executor currently advertises the object, leave the head for
          // it and end this exchange — a racing double-notification (or an
          // idle probe) must not bleed cached work onto a cold executor.
          // I12 keeps this bounded: once the head is overdue, whoever asks
          // gets it.
          const std::string& object = queue_.front().spec.data_object;
          const bool self_holds =
              entry.cached_objects != nullptr &&
              entry.cached_objects->count(object) > 0;
          if (!self_holds &&
              !alternate_holder(object, entry.id.value).empty()) {
            n_data_deferrals_.fetch_add(1, std::memory_order_relaxed);
            if (m_data_deferrals_) m_data_deferrals_->inc();
            break;
          }
        }
        if (pick != 0) {
          // Locality deferral bound (I12): once the queue head has waited
          // past max_locality_wait_s, it dispatches to whoever asks —
          // cache affinity never starves a task.
          if (config_.max_locality_wait_s > 0 &&
              now - queue_.front().enqueue_s > config_.max_locality_wait_s) {
            pick = 0;
          } else {
            n_data_deferrals_.fetch_add(1, std::memory_order_relaxed);
            if (m_data_deferrals_) m_data_deferrals_->inc();
          }
        }
        // Self-checks (docs/DATA.md): both counters must stay 0.
        // I12: a non-head pick while the head is overdue would be a
        // starvation window the bound failed to close.
        if (pick != 0 && config_.max_locality_wait_s > 0 &&
            now - queue_.front().enqueue_s > config_.max_locality_wait_s) {
          n_data_overwait_.fetch_add(1, std::memory_order_relaxed);
          if (m_data_overwait_) m_data_overwait_->inc();
        }
        // I11: a locality pick must be backed by a currently advertised
        // (and not since evicted) digest entry for THIS executor.
        if (pick != 0 && !queue_[pick].spec.data_object.empty()) {
          const bool advertised =
              entry.cached_objects != nullptr &&
              entry.cached_objects->count(queue_[pick].spec.data_object) > 0;
          if (!advertised) {
            n_data_stale_routes_.fetch_add(1, std::memory_order_relaxed);
            if (m_data_stale_routes_) m_data_stale_routes_->inc();
          }
        }
      }
      // Estimate-balanced bundling: never grow a non-empty bundle past the
      // runtime budget (section 3.4's runtime-estimate fix for imbalance).
      if (budget > 0 && !out.empty() &&
          bundle_runtime + queue_[pick].spec.estimated_runtime_s > budget) {
        break;
      }
      QueuedTask task = std::move(queue_[pick]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      bundle_runtime += task.spec.estimated_runtime_s;
      dispatch_one_locked(entry, std::move(task), now, out);
    }
    // Adaptive prefetch: while the backlog is deep, stash the next bundle
    // in this executor's outbox so its next exchange skips queue_mu_
    // entirely. Head-of-queue policies only — prefetching bypasses
    // select_task, which would break data-aware picks.
    if (adaptive && policy_head_only_ && !out.empty() &&
        queue_.size() >= 2 * static_cast<std::size_t>(target)) {
      for (std::uint32_t i = 0; i < target && !queue_.empty(); ++i) {
        entry.outbox.push_back(std::move(queue_.front()));
        queue_.pop_front();
        outboxed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
    if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
  }

  if (m_dispatched_ && !out.empty()) {
    m_dispatched_->inc(out.size());
  }
  if (m_bundle_size_ && !out.empty()) {
    m_bundle_size_->record(static_cast<double>(out.size()));
  }
  if (!out.empty()) {
    set_state_locked(entry, ExecState::kBusy);
    entry.inflight += static_cast<std::uint32_t>(out.size());
    // Journal the assignment while entry.mu is still held: a completion for
    // these tasks needs the same lock, so it can only be journaled later.
    // (Prefetch into the outbox is deliberately NOT an assignment — those
    // tasks are still queued until an exchange actually serves them.)
    if (config_.journal) {
      std::vector<TaskId> ids;
      ids.reserve(out.size());
      for (const auto& spec : out) ids.push_back(spec.id);
      config_.journal->on_assign(entry.id, ids);
    }
  } else if (entry.inflight == 0) {
    set_state_locked(entry, ExecState::kIdle);
  }
  entry.notified_s = -1.0;  // the executor pulled: notification consumed
  return out;
}

Result<std::vector<TaskSpec>> Dispatcher::get_work(ExecutorId executor_id,
                                                   std::uint32_t max_tasks) {
  auto entry = find_entry(executor_id.value);
  if (entry == nullptr) return unknown_executor(executor_id.value);
  auto elock = lock_entry(*entry);
  if (entry->removed) return unknown_executor(executor_id.value);
  entry->last_heartbeat_s = clock_.now_s();
  const bool adaptive = (max_tasks == wire::kAdaptiveBundle);
  return take_work_entry_locked(*entry, max_tasks, adaptive);
}

void Dispatcher::deliver_batch(InstanceId instance_id,
                               const std::shared_ptr<Instance>& instance,
                               std::vector<TaskResult> results) {
  if (results.empty()) return;
  bool notify_client = false;
  bool inline_drain = false;
  std::size_t ready = 0;
  {
    std::lock_guard ilock(instance->mu);
    if (!instance->open) return;
    const bool was_empty = instance->results.empty();
    instance->results.insert(instance->results.end(),
                             std::make_move_iterator(results.begin()),
                             std::make_move_iterator(results.end()));
    ready = instance->results.size();
    if (instance->streaming) {
      if (!instance->drain_scheduled &&
          instance->results.size() - instance->streamed_prefix >=
              kMinStreamFrameResults) {
        // A full frame is ready and no drain is pending: stream it inline
        // on this (delivering) thread, exactly like the polling path
        // encodes its reply on the handler thread. Hopping to the notify
        // pool costs a scheduling round trip per frame, which on a busy
        // host is most of the tail of the fig. 3 curve.
        instance->drain_scheduled = true;
        inline_drain = true;
      } else {
        schedule_drain_locked(instance_id, instance);
      }
    } else {
      // Client notification {8}, sent off the delivery path.
      // Edge-triggered: only the batch that turned the mailbox non-empty
      // notifies — a client woken by it drains everything that piled up
      // since, and the check and the drain run under the same mailbox
      // lock, so no wake-up is lost. At high completion rates this
      // collapses one push frame per delivery into one per mailbox drain.
      notify_client = was_empty;
    }
  }
  instance->cv.notify_all();
  if (inline_drain) {
    stream_drain(instance_id, instance, /*flush=*/false);
    return;
  }
  if (!notify_client) return;
  std::shared_ptr<ClientSink> sink;
  {
    std::lock_guard lock(listeners_mu_);
    sink = client_sink_;
  }
  if (sink) {
    (void)notify_pool_.submit([sink, instance_id, ready] {
      sink->notify(instance_id, ready);
    });
  }
}

void Dispatcher::schedule_drain_locked(
    InstanceId instance_id, const std::shared_ptr<Instance>& instance) {
  if (instance->drain_scheduled || !instance->open) return;
  instance->drain_scheduled = true;
  (void)notify_pool_.submit([this, instance_id, instance] {
    stream_drain(instance_id, instance, /*flush=*/true);
  });
}

void Dispatcher::stream_drain(InstanceId instance_id,
                              const std::shared_ptr<Instance>& instance,
                              bool flush) {
  std::shared_ptr<ClientSink> sink;
  {
    std::lock_guard lock(listeners_mu_);
    sink = client_sink_;
  }
  std::unique_lock ilock(instance->mu);
  // drain_scheduled stays TRUE for the whole drain: appends landing while a
  // frame is in flight must not schedule a second, concurrent drain (two
  // drains could enqueue frames out of order and force a client resync).
  // This drain's own re-check picks them up instead; the flag drops back to
  // false only on exit, under the lock, after the loop condition has gone
  // false — so a result landing after that schedules afresh and no wake-up
  // is lost.
  while (instance->open && instance->streaming &&
         instance->streamed_prefix < instance->results.size()) {
    if (instance->results.size() - instance->streamed_prefix <
        kMinStreamFrameResults) {
      // Sub-frame backlog. The inline caller leaves it to a scheduled
      // flush — its RPC reply must not wait on a coalescing window. The
      // pool flush waits briefly: under fan-in a fuller frame is a few
      // hundred microseconds away, and one frame of 1024 costs far less
      // than eight frames of 128 (encode setup, outbox wake, client wake
      // apiece). An idle producer lets the window lapse and the tail
      // flushes.
      if (!flush) break;
      instance->cv.wait_for(
          ilock, std::chrono::microseconds(200), [&] {
            return !instance->open || !instance->streaming ||
                   instance->results.size() - instance->streamed_prefix >=
                       kMinStreamFrameResults;
          });
      if (!(instance->open && instance->streaming &&
            instance->streamed_prefix < instance->results.size())) {
        break;
      }
    }
    const std::size_t from = instance->streamed_prefix;
    const std::size_t to = std::min(instance->results.size(),
                                    from + kMaxStreamFrameResults);
    const std::vector<TaskResult> batch(
        instance->results.begin() + static_cast<std::ptrdiff_t>(from),
        instance->results.begin() + static_cast<std::ptrdiff_t>(to));
    instance->streamed_prefix = to;
    instance->stream_pushed += batch.size();
    const std::uint64_t seq = instance->stream_pushed;
    const std::uint64_t epoch = instance->stream_epoch;
    // Encode + outbox enqueue run OFF the mailbox lock: with a whole fleet
    // funnelling deliver_batch() appends into one instance, serialising the
    // wire encode behind instance->mu costs the tail of the fig. 3 curve.
    // Safe because results never leave the mailbox at push time — a poll or
    // ack racing this window works off its own consistent cursor state, and
    // a stale in-flight frame is absorbed by the client's task-id dedup.
    ilock.unlock();
    const bool delivered =
        sink != nullptr && sink->deliver(instance_id, seq, batch);
    ilock.lock();
    if (!delivered) {
      // No push transport for this instance (client gone, key never
      // subscribed): roll the cursor advance back and leave streaming mode
      // — the results stay in the mailbox and wait_results polling takes
      // over until the client resubscribes. Skip the rollback if the
      // regime changed while the frame was in flight: the reset already
      // re-accounted for every mailbox result under fresh cursors.
      if (instance->stream_epoch == epoch) {
        instance->streamed_prefix -=
            std::min<std::size_t>(batch.size(), instance->streamed_prefix);
        instance->stream_pushed -=
            std::min<std::uint64_t>(batch.size(), instance->stream_pushed);
        instance->streaming = false;
      }
      if (m_stream_push_failures_) m_stream_push_failures_->inc();
      instance->drain_scheduled = false;
      return;
    }
    if (m_stream_pushed_) m_stream_pushed_->inc(batch.size());
  }
  instance->drain_scheduled = false;
  if (!flush && instance->open && instance->streaming &&
      instance->streamed_prefix < instance->results.size()) {
    // Inline drain left a sub-frame tail behind: hand it to the pool so it
    // still flushes promptly even if no further delivery ever lands.
    schedule_drain_locked(instance_id, instance);
  }
}

void Dispatcher::route_all(std::vector<PendingRoute>& to_route) {
  if (to_route.empty()) return;
  // Group by instance, preserving arrival order within each group. The
  // common case is a whole ResultBundle for one instance, so a flat vector
  // with linear probing beats a map.
  struct Group {
    InstanceId id;
    std::shared_ptr<Instance> instance;
    std::vector<TaskResult> results;
  };
  std::vector<Group> groups;
  for (auto& pending : to_route) {
    Group* group = nullptr;
    for (auto& g : groups) {
      if (g.id == pending.instance_id) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{pending.instance_id, nullptr, {}});
      group = &groups.back();
    }
    group->results.push_back(std::move(pending.result));
  }
  // One registry pass resolves every distinct instance; one mailbox lock,
  // one bulk append and one wake-up per (instance, delivery) follow.
  {
    std::lock_guard lock(inst_mu_);
    for (auto& g : groups) {
      auto it = instances_.find(g.id.value);
      if (it != instances_.end()) g.instance = it->second;
    }
  }
  if (m_route_batches_) {
    m_route_batches_->inc();
    m_route_results_->inc(to_route.size());
  }
  for (auto& g : groups) {
    if (m_route_batch_size_) {
      m_route_batch_size_->record(static_cast<double>(g.results.size()));
    }
    if (g.instance) deliver_batch(g.id, g.instance, std::move(g.results));
  }
  to_route.clear();
}

Result<Dispatcher::DeliverOutcome> Dispatcher::deliver_results(
    ExecutorId executor_id, std::vector<TaskResult> results,
    std::uint32_t want_tasks) {
  auto entry = find_entry(executor_id.value);
  if (entry == nullptr) {
    // A delivery from a "dead" executor: it was alive all along. Its tasks
    // were already requeued; dropping this delivery keeps the exactly-once
    // result guarantee.
    return unknown_executor(executor_id.value);
  }
  if (config_.fault != nullptr &&
      config_.fault->sample(fault::Site::kDispatcherAck).action ==
          fault::Action::kDrop) {
    // Lost ack: the delivery "never arrived" — nothing is processed, the
    // executor sees a failure and redelivers. The late-duplicate drop
    // below keeps redelivered results exactly-once.
    return make_error(ErrorCode::kUnavailable, "injected lost ack");
  }

  // A result accepted under the entry lock, held until the lock is
  // released: the completion listener and instance routing run lock-free.
  struct Accepted {
    TaskResult result;
    InstanceId instance;
    bool route{false};
  };
  std::vector<Accepted> accepted;
  DeliverOutcome outcome;
  bool pump_after = false;
  double now;
  {
    auto elock = lock_entry(*entry);
    if (entry->removed) return unknown_executor(executor_id.value);
    now = clock_.now_s();
    entry->last_heartbeat_s = now;

    for (auto& result : results) {
      auto dit = entry->dispatched.find(result.task_id.value);
      if (dit == entry->dispatched.end()) {
        // Late duplicate of a task already replayed (possibly now owned by
        // another executor): drop it so the client sees exactly one result
        // per task.
        continue;
      }
      DispatchedTask dispatched = std::move(dit->second);
      entry->dispatched.erase(dit);
      dispatched_count_.fetch_sub(1, std::memory_order_relaxed);
      if (entry->inflight > 0) --entry->inflight;
      ++outcome.acknowledged;

      result.queue_time_s = dispatched.dispatch_s - dispatched.enqueue_s;
      result.overhead_s = (now - dispatched.dispatch_s) - result.exec_time_s;
      result.executor_id = executor_id;
      if (tracer_) {
        // Result delivery {6}: from when execution finished (dispatch time
        // plus exec time, i.e. `now` minus the measured overhead) until the
        // dispatcher ingested the result.
        tracer_->record(result.task_id, obs::Stage::kDeliverResult,
                        now - std::max(0.0, result.overhead_s), now,
                        executor_id.value);
      }
      if (m_overhead_) m_overhead_->record(result.overhead_s);

      // Mirror the executor's data cache for data-aware dispatch.
      if (!dispatched.spec.data_object.empty()) {
        cache_insert_locked(*entry, dispatched.spec.data_object);
      }

      const InstanceId instance_id = dispatched.instance;
      const bool failed = !result.success();
      if (failed && config_.replay.retry_on_failure &&
          dispatched.attempts < config_.replay.max_retries) {
        ++dispatched.attempts;
        n_retried_.fetch_add(1, std::memory_order_relaxed);
        if (m_retried_) m_retried_->inc();
        // Journal before the push makes the task visible to get_work.
        if (config_.journal) {
          config_.journal->on_requeue({result.task_id}, /*retry=*/true);
        }
        requeue_task(to_queued(std::move(dispatched)), /*front=*/false);
        accepted.push_back(
            Accepted{std::move(result), instance_id, /*route=*/false});
        continue;
      }

      if (failed) {
        n_failed_.fetch_add(1, std::memory_order_relaxed);
        if (m_failed_) m_failed_->inc();
      } else {
        n_completed_.fetch_add(1, std::memory_order_relaxed);
        if (m_completed_) m_completed_->inc();
      }
      if (config_.journal) {
        config_.journal->on_complete(instance_id, result, /*quarantined=*/false);
      }
      if (tracer_) {
        tracer_->instant(result.task_id, obs::Stage::kAck, now,
                         executor_id.value);
      }
      accepted.push_back(
          Accepted{std::move(result), instance_id, /*route=*/true});
    }

    // Piggy-back new work on the acknowledgement {7} (section 3.4).
    if (want_tasks > 0 && config_.piggyback && !entry->release_requested) {
      const bool adaptive = (want_tasks == wire::kAdaptiveWant);
      outcome.piggyback =
          take_work_entry_locked(*entry, adaptive ? 1 : want_tasks, adaptive);
    }
    if (outcome.piggyback.empty()) {
      if (entry->inflight == 0) {
        set_state_locked(*entry, ExecState::kIdle);
        // An idle executor must not sit on prefetched work.
        drain_outbox_locked(*entry);
      }
      pump_after = true;
    }
  }

  if (!accepted.empty()) {
    {
      std::lock_guard slock(stats_mu_);
      for (const auto& a : accepted) {
        overhead_stats_.add(a.result.overhead_s);
      }
    }
    std::function<void(const TaskResult&, double)> listener;
    {
      std::lock_guard lock(listeners_mu_);
      listener = completion_listener_;
    }
    if (listener) {
      for (const auto& a : accepted) listener(a.result, now);
    }
    std::vector<PendingRoute> to_route;
    to_route.reserve(accepted.size());
    for (auto& a : accepted) {
      if (a.route) {
        to_route.push_back(PendingRoute{a.instance, std::move(a.result)});
      }
    }
    route_all(to_route);
  }
  if (pump_after) pump_notifications();
  return outcome;
}

void Dispatcher::note_cached_object(ExecutorId executor_id,
                                    const std::string& object) {
  if (object.empty()) return;
  auto entry = find_entry(executor_id.value);
  if (entry == nullptr) return;
  std::lock_guard elock(entry->mu);
  if (!entry->removed) cache_insert_locked(*entry, object);
}

void Dispatcher::apply_digest(ExecutorId executor_id, std::uint64_t generation,
                              std::uint32_t data_port,
                              const std::vector<std::string>& objects) {
  auto entry = find_entry(executor_id.value);
  if (entry == nullptr) return;
  std::lock_guard elock(entry->mu);
  if (entry->removed) return;
  // A generation at or below the last applied one is a reordered stale
  // digest; routing on it would violate I11. Generation 0 (registration
  // seed) always applies — the entry is fresh.
  if (generation != 0 && generation <= entry->digest_generation) return;
  entry->digest_generation = std::max(entry->digest_generation, generation);
  auto next = std::make_shared<std::unordered_set<std::string>>(
      objects.begin(), objects.end());
  {
    std::lock_guard dlock(data_mu_);
    if (data_port != 0) {
      entry->info.data_port = data_port;
      data_endpoints_[executor_id.value] =
          entry->info.host + ":" + std::to_string(data_port);
    }
    // Full replace: drop index entries no longer advertised, add new ones.
    if (entry->cached_objects != nullptr) {
      for (const auto& object : *entry->cached_objects) {
        if (next->count(object) != 0) continue;
        auto it = holders_.find(object);
        if (it == holders_.end()) continue;
        it->second.erase(executor_id.value);
        if (it->second.empty()) holders_.erase(it);
      }
    }
    for (const auto& object : *next) {
      holders_[object].insert(executor_id.value);
    }
  }
  entry->cached_objects = std::move(next);
  n_data_digests_.fetch_add(1, std::memory_order_relaxed);
  if (m_data_digests_) m_data_digests_->inc();
}

Status Dispatcher::evict_cached_object(ExecutorId executor_id,
                                       const std::string& object) {
  if (object.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty object in evict");
  }
  auto entry = find_entry(executor_id.value);
  if (entry == nullptr) return unknown_executor(executor_id.value);
  std::lock_guard elock(entry->mu);
  if (entry->removed) return unknown_executor(executor_id.value);
  if (entry->cached_objects == nullptr ||
      entry->cached_objects->count(object) == 0) {
    return make_error(ErrorCode::kNotFound,
                      "object not advertised by executor: " + object);
  }
  cache_erase_locked(*entry, object);
  n_data_evictions_.fetch_add(1, std::memory_order_relaxed);
  if (m_data_evictions_) m_data_evictions_->inc();
  return ok_status();
}

Dispatcher::DataStats Dispatcher::data_stats() const {
  DataStats stats;
  stats.stale_routes = n_data_stale_routes_.load(std::memory_order_relaxed);
  stats.locality_overwait = n_data_overwait_.load(std::memory_order_relaxed);
  stats.locality_deferrals = n_data_deferrals_.load(std::memory_order_relaxed);
  stats.digests_applied = n_data_digests_.load(std::memory_order_relaxed);
  stats.evictions = n_data_evictions_.load(std::memory_order_relaxed);
  return stats;
}

DispatcherStatus Dispatcher::status() const {
  DispatcherStatus snapshot;
  snapshot.submitted = n_submitted_.load(std::memory_order_relaxed);
  snapshot.completed = n_completed_.load(std::memory_order_relaxed);
  snapshot.failed = n_failed_.load(std::memory_order_relaxed);
  snapshot.retried = n_retried_.load(std::memory_order_relaxed);
  snapshot.suspicions = n_suspicions_.load(std::memory_order_relaxed);
  snapshot.false_suspicions =
      n_false_suspicions_.load(std::memory_order_relaxed);
  snapshot.quarantined = n_quarantined_.load(std::memory_order_relaxed);
  {
    std::lock_guard qlock(queue_mu_);
    snapshot.queued = queue_.size();
  }
  // Prefetched tasks have not been handed to an executor yet: still queued.
  snapshot.queued += outboxed_.load(std::memory_order_relaxed);
  snapshot.dispatched = dispatched_count_.load(std::memory_order_relaxed);
  snapshot.registered_executors = registered_.load(std::memory_order_relaxed);
  const std::uint32_t busy = busy_.load(std::memory_order_relaxed);
  snapshot.busy_executors = std::min(busy, snapshot.registered_executors);
  snapshot.idle_executors = snapshot.registered_executors -
                            snapshot.busy_executors;
  return snapshot;
}

int Dispatcher::check_replays() {
  if (config_.replay.response_timeout_s <= 0) return 0;
  std::vector<PendingRoute> to_route;
  int requeued = 0;
  bool any_overdue = false;
  const double now = clock_.now_s();
  for (auto& entry : snapshot_entries()) {
    std::lock_guard elock(entry->mu);
    if (entry->removed) continue;
    std::vector<std::uint64_t> overdue;
    for (const auto& [task_id, task] : entry->dispatched) {
      const double deadline = task.dispatch_s +
                              config_.replay.response_timeout_s +
                              task.spec.estimated_runtime_s;
      if (now >= deadline) overdue.push_back(task_id);
    }
    if (overdue.empty()) continue;
    any_overdue = true;
    for (auto task_id : overdue) {
      auto node = entry->dispatched.extract(task_id);
      DispatchedTask task = std::move(node.mapped());
      dispatched_count_.fetch_sub(1, std::memory_order_relaxed);
      if (entry->inflight > 0) --entry->inflight;
      if (task.attempts >= config_.replay.max_retries) {
        // Retry budget exhausted while the task sat on an unresponsive
        // executor: fail it permanently so it reaches a terminal state
        // instead of lingering in the dispatched map forever.
        n_failed_.fetch_add(1, std::memory_order_relaxed);
        if (m_failed_) m_failed_->inc();
        TaskResult result;
        result.task_id = task.spec.id;
        result.executor_id = task.executor;
        result.state = TaskState::kFailed;
        result.exit_code = -1;
        result.stderr_data = "replay timeout: retry budget exhausted";
        result.queue_time_s = task.dispatch_s - task.enqueue_s;
        if (config_.journal) {
          config_.journal->on_complete(task.instance, result,
                                       /*quarantined=*/false);
        }
        to_route.push_back(PendingRoute{task.instance, std::move(result)});
        continue;
      }
      ++task.attempts;
      n_retried_.fetch_add(1, std::memory_order_relaxed);
      if (m_retried_) m_retried_->inc();
      if (config_.journal) {
        config_.journal->on_requeue({task.spec.id}, /*retry=*/true);
      }
      requeue_task(to_queued(std::move(task)), /*front=*/true);
      ++requeued;
    }
    // The executor missed its response deadline: reclaim any prefetched
    // work so it cannot black-hole that too.
    drain_outbox_locked(*entry);
    if (entry->inflight == 0) set_state_locked(*entry, ExecState::kIdle);
  }
  if (any_overdue) pump_notifications();
  route_all(to_route);
  return requeued;
}

void Dispatcher::renotify_stale() {
  if (config_.renotify_timeout_s <= 0) return;
  if (shutdown_.load(std::memory_order_relaxed)) return;
  const double now = clock_.now_s();
  std::vector<std::pair<std::shared_ptr<ExecutorSink>, ExecutorId>> to_notify;
  for (auto& entry : snapshot_entries()) {
    std::lock_guard elock(entry->mu);
    if (entry->removed || entry->state != ExecState::kNotified ||
        entry->notified_s < 0 ||
        now - entry->notified_s <= config_.renotify_timeout_s) {
      continue;
    }
    // The executor was notified but never pulled: the notification was
    // lost (or the push channel is slow). Send another one.
    entry->notified_s = now;
    if (m_renotifies_) m_renotifies_->inc();
    to_notify.emplace_back(entry->sink, entry->id);
  }
  for (auto& [sink, executor_id] : to_notify) {
    (void)notify_pool_.submit([sink, executor_id] {
      if (sink) sink->notify(executor_id, executor_id.value);
    });
  }
}

std::vector<ExecutorId> Dispatcher::request_release(int count) {
  std::vector<ExecutorId> released;
  std::vector<std::pair<std::shared_ptr<ExecutorSink>, ExecutorId>> to_notify;
  for (auto& entry : snapshot_entries()) {
    if (static_cast<int>(released.size()) >= count) break;
    std::lock_guard elock(entry->mu);
    if (!entry->removed && entry->state == ExecState::kIdle &&
        !entry->release_requested) {
      entry->release_requested = true;
      idle_erase(entry->id.value);
      released.push_back(entry->id);
      to_notify.emplace_back(entry->sink, entry->id);
    }
  }
  for (auto& [sink, id] : to_notify) {
    if (sink) sink->notify(id, kReleaseResourceKey);
  }
  return released;
}

void Dispatcher::set_completion_listener(
    std::function<void(const TaskResult&, double)> listener) {
  std::lock_guard lock(listeners_mu_);
  completion_listener_ = std::move(listener);
}

void Dispatcher::set_client_sink(std::shared_ptr<ClientSink> sink) {
  std::lock_guard lock(listeners_mu_);
  client_sink_ = std::move(sink);
}

Accumulator Dispatcher::overhead_stats() const {
  std::lock_guard lock(stats_mu_);
  return overhead_stats_;
}

}  // namespace falkon::core
