#include "core/service_tcp.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <thread>

#include "common/logging.h"
#include "core/data_plane.h"

namespace falkon::core {
namespace {

template <class Expected>
Result<Expected> expect(Result<wire::Message> reply) {
  if (!reply.ok()) return reply.error();
  auto* payload = std::get_if<Expected>(&reply.value());
  if (payload == nullptr) {
    return make_error(ErrorCode::kProtocolError,
                      std::string("unexpected reply type: ") +
                          wire::msg_type_name(message_type(reply.value())));
  }
  return std::move(*payload);
}

/// Resolve the reactor_loops knob against the dispatcher's shard count.
/// Auto (0) spends one loop per hardware thread — extra loops on a smaller
/// host are pure context-switch overhead — and never exceeds the shard
/// count, so loop ownership stays a coarsening of registry ownership.
int resolve_reactor_loops(int requested, std::size_t executor_shards) {
  const int shards = std::max(1, static_cast<int>(executor_shards));
  if (requested <= 0) {
    // FALKON_REACTOR_LOOPS pins the auto default from the environment — CI
    // forces >= 2 loops through it so multi-loop paths stay covered even on
    // single-core runners. An explicit constructor value still wins.
    if (const char* env = std::getenv("FALKON_REACTOR_LOOPS")) {
      const int forced = std::atoi(env);
      if (forced > 0) return std::min(forced, shards);
    }
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    return std::min(hw, shards);
  }
  return std::min(requested, shards);
}

/// FALKON_REUSEPORT forces reuseport accept mode on (any value but "" or
/// "0"); an explicit constructor `true` also wins. CI uses the variable to
/// run the whole TCP suite through the SO_REUSEPORT accept path.
bool resolve_reuseport(bool requested) {
  if (requested) return true;
  const char* env = std::getenv("FALKON_REUSEPORT");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

TcpDispatcherServer::TcpDispatcherServer(Dispatcher& dispatcher, obs::Obs* obs,
                                         int reactor_loops, bool reuseport)
    : dispatcher_(dispatcher),
      obs_(obs),
      reactor_(net::ReactorOptions{
          .n_loops = resolve_reactor_loops(reactor_loops,
                                           dispatcher.executor_shard_count()),
          .obs = obs,
          .reuseport = resolve_reuseport(reuseport)}) {
  if (obs != nullptr) {
    obs::Registry& reg = obs->registry();
    m_requests_ = &reg.counter("falkon.net.rpc.requests");
    m_errors_ = &reg.counter("falkon.net.rpc.errors");
    m_pushes_ = &reg.counter("falkon.net.push.notifications");
    m_pending_bundles_ = &reg.gauge("falkon.net.rpc.pending_bundles");
    m_bundles_issued_ = &reg.counter("falkon.net.rpc.bundles_issued");
    m_bundles_retired_ = &reg.counter("falkon.net.rpc.bundles_retired");
  }
}

TcpDispatcherServer::~TcpDispatcherServer() { stop(); }

Status TcpDispatcherServer::start(std::uint16_t rpc_port,
                                  std::uint16_t push_port,
                                  fault::FaultInjector* fault) {
  if (auto status = reactor_.start(); !status.ok()) return status;
  net::PushServerOptions push_options;
  push_options.reactor = &reactor_;
  if (auto status = push_.start(push_port, fault, obs_, push_options);
      !status.ok()) {
    return status;
  }
  sink_ = std::make_shared<PushSink>(*this, m_pushes_);
  client_sink_ = std::make_shared<ClientPushSink>(push_);
  dispatcher_.set_client_sink(client_sink_);
  // A shared handler pool keeps slow/blocking handlers (wait_results with a
  // timeout) from stalling pipelined calls on the same connection; the
  // reactor loop itself never runs handlers.
  net::RpcServerOptions options;
  options.handler_threads = 16;
  options.obs = obs_;
  options.reactor = &reactor_;
  // Pin each executor's RPC connection to its shard's loop as soon as a
  // request names the executor (register carries no id yet — the first
  // get-work or result bundle settles it). With the push side pinned by
  // subscription key, the whole exchange for one executor runs on one loop.
  options.affinity_key = [](const wire::Message& m) -> std::uint64_t {
    using namespace wire;
    if (const auto* r = std::get_if<GetWorkRequest>(&m)) {
      return r->executor_id.value;
    }
    if (const auto* r = std::get_if<ResultBundle>(&m)) {
      return r->executor_id.value;
    }
    if (const auto* r = std::get_if<ResultRequest>(&m)) {
      return r->executor_id.value;
    }
    if (const auto* r = std::get_if<HeartbeatRequest>(&m)) {
      return r->executor_id.value;
    }
    if (const auto* r = std::get_if<CacheDigest>(&m)) {
      return r->executor_id.value;
    }
    if (const auto* r = std::get_if<DataEvict>(&m)) {
      return r->executor_id.value;
    }
    if (const auto* r = std::get_if<SubscribeResults>(&m)) {
      // Streaming clients pin their RPC connection to the loop that owns
      // their push subscription: acks and the resulting drain pushes stay
      // loop-local.
      return kClientKeyBase + r->instance_id.value;
    }
    return 0;
  };
  if (auto status =
          rpc_.start([this](const wire::Message& m) { return handle(m); },
                     rpc_port, fault, options);
      !status.ok()) {
    // Unwind the sink registration: with start() failed, stop() will be a
    // no-op, and the dispatcher must not keep notifying through a server
    // the caller is about to destroy.
    dispatcher_.set_client_sink(nullptr);
    return status;
  }
  // Move the dispatcher's recovery sweep onto the reactor's timer wheel:
  // same cadence, one fewer dedicated thread in the deployment.
  if (dispatcher_.adopt_external_sweeper()) {
    sweeper_adopted_ = true;
    sweep_timer_ = reactor_.add_periodic(
        dispatcher_.sweep_interval_real_s(), [this] { dispatcher_.sweep_once(); });
  }
  started_ = true;
  return ok_status();
}

void TcpDispatcherServer::stop() {
  // Idempotent: a dead primary's server object may be stopped explicitly
  // and then destroyed after its Dispatcher is already gone — the second
  // stop must not touch the dangling reference.
  if (!started_) return;
  started_ = false;
  if (sweeper_adopted_) {
    reactor_.cancel_timer(sweep_timer_);
    reactor_.barrier();  // a final sweep_once() may be mid-flight
    sweeper_adopted_ = false;
    dispatcher_.resume_internal_sweeper();
  }
  dispatcher_.set_client_sink(nullptr);
  rpc_.stop();
  push_.stop();
  reactor_.stop();
}

Status TcpResultListener::start(const std::string& host,
                                std::uint16_t push_port, InstanceId instance,
                                Callback callback) {
  return receiver_.start(
      host, push_port, kClientKeyBase + instance.value,
      [callback = std::move(callback)](const wire::Message& message) {
        if (const auto* notify = std::get_if<wire::ClientNotify>(&message)) {
          callback(notify->instance_id, notify->completed);
        }
      });
}

void TcpDispatcherServer::release_executor(std::uint64_t executor_value) {
  push_.drop_subscriber(executor_value);
  std::lock_guard lock(bundles_mu_);
  if (pending_bundles_.erase(executor_value) != 0) {
    if (m_bundles_retired_) m_bundles_retired_->inc();
    if (m_pending_bundles_) {
      m_pending_bundles_->set(static_cast<double>(pending_bundles_.size()));
    }
  }
}

void TcpResultListener::stop() { receiver_.stop(); }

wire::Message TcpDispatcherServer::handle(const wire::Message& request) {
  if (m_requests_) m_requests_->inc();
  wire::Message reply = dispatch(request);
  if (m_errors_ && std::get_if<wire::ErrorReply>(&reply) != nullptr) {
    m_errors_->inc();
  }
  return reply;
}

wire::Message TcpDispatcherServer::dispatch(const wire::Message& request) {
  using namespace wire;
  if (const auto* m = std::get_if<CreateInstanceRequest>(&request)) {
    auto result = dispatcher_.create_instance(m->client_id);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    return CreateInstanceReply{result.value()};
  }
  if (const auto* m = std::get_if<DestroyInstanceRequest>(&request)) {
    auto result = dispatcher_.destroy_instance(m->instance_id);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    return DestroyInstanceReply{};
  }
  if (const auto* m = std::get_if<SubmitRequest>(&request)) {
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (m->epoch != 0 && m->epoch != epoch) {
      // Fencing both ways: a client that learned a newer epoch must not be
      // accepted by this (zombie) server, and a client stamped with an old
      // epoch re-syncs via status() before retrying.
      return ErrorReply{ErrorCode::kUnavailable,
                        "epoch mismatch: request epoch " +
                            std::to_string(m->epoch) + ", server epoch " +
                            std::to_string(epoch)};
    }
    auto result = dispatcher_.submit(m->instance_id, m->tasks, m->submit_seq);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    return SubmitReply{result.value(), epoch};
  }
  if (const auto* m = std::get_if<SubscribeResults>(&request)) {
    // (Re)subscribe / cumulative ack for push-mode result streaming. The
    // reply is a ResultStream carrying the dispatcher's current cursor and
    // no results — actual batches arrive on the push channel.
    auto result = dispatcher_.subscribe_results(m->instance_id, m->ack_seq);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    ResultStream reply;
    reply.instance_id = m->instance_id;
    reply.seq = result.value();
    return reply;
  }
  if (const auto* m = std::get_if<WaitResultsRequest>(&request)) {
    auto result =
        dispatcher_.wait_results(m->instance_id, m->max_results, m->timeout_s);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    WaitResultsReply reply;
    reply.results = result.take();
    return reply;
  }
  if (const auto* m = std::get_if<RegisterRequest>(&request)) {
    auto result = dispatcher_.register_executor(*m, sink_);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    return RegisterReply{result.value(),
                         epoch_.load(std::memory_order_acquire)};
  }
  if (const auto* m = std::get_if<GetWorkRequest>(&request)) {
    auto result = dispatcher_.get_work(m->executor_id, m->max_tasks);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    GetWorkReply reply;
    reply.tasks = result.take();
    return reply;
  }
  if (const auto* m = std::get_if<ResultRequest>(&request)) {
    auto result = dispatcher_.deliver_results(m->executor_id, m->results,
                                              m->want_tasks);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    ResultReply reply;
    reply.acknowledged = result.value().acknowledged;
    reply.piggyback_tasks = std::move(result.value().piggyback);
    return reply;
  }
  if (const auto* m = std::get_if<ResultBundle>(&request)) {
    // Batched-ack bookkeeping: the echoed ack_seq retires the executor's
    // outstanding bundle in one shot (no per-task ack traffic).
    if (m->ack_seq != 0) {
      std::lock_guard lock(bundles_mu_);
      auto it = pending_bundles_.find(m->executor_id.value);
      if (it != pending_bundles_.end() && m->ack_seq >= it->second) {
        pending_bundles_.erase(it);
        if (m_bundles_retired_) m_bundles_retired_->inc();
      }
      if (m_pending_bundles_) {
        m_pending_bundles_->set(static_cast<double>(pending_bundles_.size()));
      }
    }
    auto result = dispatcher_.deliver_results(m->executor_id, m->results,
                                              m->want_tasks);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    TaskBundle reply;
    reply.executor_id = m->executor_id;
    reply.acknowledged = result.value().acknowledged;
    reply.tasks = std::move(result.value().piggyback);
    if (!reply.tasks.empty()) {
      reply.bundle_seq = bundle_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      std::lock_guard lock(bundles_mu_);
      auto [it, inserted] =
          pending_bundles_.emplace(m->executor_id.value, reply.bundle_seq);
      if (!inserted) {
        // Superseding an unacked seq settles it: the next ack_seq covers
        // both (cumulative ack), so only the newest needs tracking.
        it->second = reply.bundle_seq;
        if (m_bundles_retired_) m_bundles_retired_->inc();
      }
      if (m_bundles_issued_) m_bundles_issued_->inc();
      if (m_pending_bundles_) {
        m_pending_bundles_->set(static_cast<double>(pending_bundles_.size()));
      }
    }
    return reply;
  }
  if (const auto* m = std::get_if<HeartbeatRequest>(&request)) {
    auto result = dispatcher_.heartbeat(m->executor_id);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    if (m->has_digest) {
      // Piggybacked cache digest (docs/DATA.md): refresh the locality
      // router's mirror in the same exchange that proves liveness.
      dispatcher_.apply_digest(m->executor_id, m->digest_generation,
                               m->data_port, m->cached);
    }
    return HeartbeatReply{};
  }
  if (const auto* m = std::get_if<CacheDigest>(&request)) {
    // Standalone digest refresh (same payload the heartbeat piggybacks);
    // unknown executors are a protocol error, not a transport teardown.
    auto entry = dispatcher_.heartbeat(m->executor_id);
    if (!entry.ok()) return ErrorReply{entry.error().code, entry.error().message};
    dispatcher_.apply_digest(m->executor_id, m->generation, m->data_port,
                             m->objects);
    return HeartbeatReply{};
  }
  if (const auto* m = std::get_if<DataEvict>(&request)) {
    // Incremental eviction notice: the object must stop attracting locality
    // routes immediately (invariant I11). Unknown executor or an object the
    // executor never advertised answers kNotFound — an ErrorReply, never a
    // connection teardown.
    auto result = dispatcher_.evict_cached_object(m->executor_id, m->object);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    return HeartbeatReply{};
  }
  if (const auto* m = std::get_if<DeregisterRequest>(&request)) {
    // Transport cleanup rides the sink's on_removed hook (same path the
    // failure detector takes); release here too so an unknown executor —
    // where deregister_executor never fires the hook — still drops its
    // push subscription.
    auto result = dispatcher_.deregister_executor(m->executor_id, m->reason);
    release_executor(m->executor_id.value);
    if (!result.ok()) return ErrorReply{result.error().code, result.error().message};
    return DeregisterReply{};
  }
  if (std::get_if<StatusRequest>(&request) != nullptr) {
    StatusReply reply = dispatcher_.status().to_wire();
    reply.epoch = epoch_.load(std::memory_order_acquire);
    return reply;
  }
  if (const auto* m = std::get_if<ReplFetch>(&request)) {
    ReplicationSource* source =
        replication_.load(std::memory_order_acquire);
    if (source == nullptr) {
      return ErrorReply{ErrorCode::kUnavailable,
                        "replication not enabled on this dispatcher"};
    }
    auto batch = source->fetch(m->from_lsn, m->max_bytes);
    if (m->epoch != 0 && m->epoch > batch.epoch) {
      // The follower has seen a newer regime than this source: we are the
      // stale side and must not feed it our (dead) branch of history.
      return ErrorReply{ErrorCode::kUnavailable,
                        "stale replication source: follower epoch " +
                            std::to_string(m->epoch) + " > source epoch " +
                            std::to_string(batch.epoch)};
    }
    if (batch.is_snapshot) {
      ReplSnapshot reply;
      reply.lsn = batch.last_lsn;
      reply.payload = std::move(batch.payload);
      reply.epoch = batch.epoch;
      return reply;
    }
    ReplAppend reply;
    reply.first_lsn = batch.first_lsn;
    reply.last_lsn = batch.last_lsn;
    reply.payload = std::move(batch.payload);
    reply.epoch = batch.epoch;
    return reply;
  }
  if (const auto* m = std::get_if<ReplAck>(&request)) {
    ReplicationSource* source =
        replication_.load(std::memory_order_acquire);
    if (source != nullptr) source->note_ack(m->applied_lsn);
    return ReplAckReply{};
  }
  if (std::get_if<ElectionPing>(&request) != nullptr) {
    // A running primary answers election pings as an already-promoted rank-0
    // contestant: any standby probing it stands down immediately.
    ElectionAck ack;
    ack.epoch = epoch_.load(std::memory_order_acquire);
    ack.rank = 0;
    ack.promoted = true;
    return ack;
  }
  return ErrorReply{ErrorCode::kProtocolError,
                    std::string("unhandled request: ") +
                        wire::msg_type_name(message_type(request))};
}

Status TcpExecutorHarness::Link::connect(const std::string& host,
                                         std::uint16_t rpc_port,
                                         fault::FaultInjector* fault,
                                         obs::Obs* obs) {
  std::lock_guard lock(mu_);
  host_ = host;
  rpc_port_ = rpc_port;
  fault_ = fault;
  obs_ = obs;
  auto client = net::RpcClient::connect(host_, rpc_port_, fault_, obs_);
  if (!client.ok()) return client.error();
  rpc_ = std::make_unique<net::RpcClient>(client.take());
  return ok_status();
}

Result<wire::Message> TcpExecutorHarness::Link::roundtrip(
    const wire::Message& request) {
  std::lock_guard lock(mu_);
  if (rpc_ == nullptr) {
    auto client = net::RpcClient::connect(host_, rpc_port_, fault_, obs_);
    if (!client.ok()) return client.error();
    rpc_ = std::make_unique<net::RpcClient>(client.take());
  }
  auto reply = rpc_->call(request);
  if (!reply.ok()) {
    const ErrorCode code = reply.error().code;
    if (code == ErrorCode::kIoError || code == ErrorCode::kClosed ||
        code == ErrorCode::kProtocolError || code == ErrorCode::kUnavailable) {
      // Transport-level failure: the stream may be desynchronised or dead.
      // Drop the connection so the next attempt dials fresh.
      rpc_.reset();
    }
  }
  return reply;
}

Result<ExecutorId> TcpExecutorHarness::Link::register_executor(
    const wire::RegisterRequest& request) {
  wire::RegisterRequest stamped = request;
  if (data_ != nullptr) {
    // Seed the dispatcher's cache mirror in the registration itself so a
    // warm executor (or one re-registering on a promoted standby) attracts
    // locality routes from its very first get-work.
    stamped.data_port = data_->port();
    stamped.cached = data_->digest().objects;
    sent_digest_generation_.store(~0ull, std::memory_order_release);
  }
  auto reply = expect<wire::RegisterReply>(roundtrip(stamped));
  if (!reply.ok()) return reply.error();
  epoch_.store(reply.value().epoch, std::memory_order_release);
  return reply.value().executor_id;
}

Result<std::vector<TaskSpec>> TcpExecutorHarness::Link::get_work(
    ExecutorId executor, std::uint32_t max_tasks) {
  wire::GetWorkRequest request;
  request.executor_id = executor;
  request.max_tasks = max_tasks;
  auto reply = expect<wire::GetWorkReply>(roundtrip(request));
  if (!reply.ok()) return reply.error();
  return std::move(reply.value().tasks);
}

Result<std::vector<TaskSpec>> TcpExecutorHarness::Link::deliver_results(
    ExecutorId executor, std::vector<TaskResult> results,
    std::uint32_t want_tasks) {
  wire::ResultBundle request;
  request.executor_id = executor;
  {
    std::lock_guard lock(mu_);
    request.ack_seq = last_bundle_seq_;
  }
  request.results = std::move(results);
  request.want_tasks = want_tasks;
  auto reply = expect<wire::TaskBundle>(roundtrip(request));
  if (!reply.ok()) return reply.error();
  if (reply.value().bundle_seq != 0) {
    std::lock_guard lock(mu_);
    last_bundle_seq_ = reply.value().bundle_seq;
  }
  return std::move(reply.value().tasks);
}

Status TcpExecutorHarness::Link::deregister(ExecutorId executor,
                                            const std::string& reason) {
  wire::DeregisterRequest request;
  request.executor_id = executor;
  request.reason = reason;
  auto reply = expect<wire::DeregisterReply>(roundtrip(request));
  if (!reply.ok()) return reply.error();
  return ok_status();
}

Status TcpExecutorHarness::Link::heartbeat(ExecutorId executor) {
  wire::HeartbeatRequest request;
  request.executor_id = executor;
  std::uint64_t digest_generation = 0;
  if (data_ != nullptr) {
    // Incremental eviction notices first: a kDataEvict must land before the
    // dispatcher's next routing decision even when the digest below is
    // skipped as unchanged. kNotFound (already gone upstream) is fine.
    for (auto& object : data_->take_evict_notices()) {
      wire::DataEvict evict;
      evict.executor_id = executor;
      evict.object = std::move(object);
      (void)roundtrip(evict);
    }
    auto digest = data_->digest();
    digest_generation = digest.generation;
    if (digest_generation !=
        sent_digest_generation_.load(std::memory_order_acquire)) {
      request.has_digest = true;
      request.digest_generation = digest_generation;
      request.data_port = data_->port();
      request.cached = std::move(digest.objects);
    }
  }
  auto reply = expect<wire::HeartbeatReply>(roundtrip(request));
  if (!reply.ok()) return reply.error();
  if (request.has_digest) {
    sent_digest_generation_.store(digest_generation, std::memory_order_release);
  }
  return ok_status();
}

TcpExecutorHarness::TcpExecutorHarness(Clock& clock, std::string host,
                                       std::uint16_t rpc_port,
                                       std::uint16_t push_port,
                                       std::unique_ptr<TaskEngine> engine,
                                       ExecutorOptions options)
    : clock_(clock),
      host_(std::move(host)),
      rpc_port_(rpc_port),
      push_port_(push_port),
      options_(options),
      engine_(std::move(engine)) {
  runtime_ = std::make_unique<ExecutorRuntime>(clock_, link_, *engine_,
                                               options_);
}

TcpExecutorHarness::~TcpExecutorHarness() { stop(); }

Status TcpExecutorHarness::start() {
  if (options_.data != nullptr) {
    // Bring the peer-to-peer fetch server up before registering: the
    // registration advertises its port, so it must already be listening.
    if (auto status = options_.data->start(); !status.ok()) return status;
    link_.set_data(options_.data);
  }
  if (auto status = link_.connect(host_, rpc_port_, options_.fault,
                                  options_.obs);
      !status.ok()) {
    return status;
  }
  if (options_.poll_interval_s <= 0) {
    // A failover re-registration changes our executor id; re-key the push
    // subscription (runs on the runtime's work thread, where PushReceiver
    // stop/start is safe) so the promoted dispatcher can notify us.
    runtime_->set_id_listener([this](ExecutorId id) {
      receiver_.stop();
      (void)receiver_.start(host_, push_port_, id.value,
                            [this](const wire::Message& message) {
                              if (const auto* notify =
                                      std::get_if<wire::Notify>(&message)) {
                                runtime_->notify(notify->resource_key);
                              }
                            });
    });
  }
  if (auto status = runtime_->start(); !status.ok()) return status;
  if (options_.poll_interval_s > 0) {
    // Polling (firewall-bypass) mode: no notification channel at all —
    // only outbound RPC connections leave this host.
    return ok_status();
  }
  // Subscribe for notifications with the id the dispatcher assigned.
  return receiver_.start(host_, push_port_, runtime_->id().value,
                         [this](const wire::Message& message) {
                           if (const auto* notify =
                                   std::get_if<wire::Notify>(&message)) {
                             runtime_->notify(notify->resource_key);
                           }
                         });
}

void TcpExecutorHarness::stop() {
  if (runtime_) runtime_->stop();
  receiver_.stop();
}

Result<std::unique_ptr<TcpDispatcherClient>> TcpDispatcherClient::connect(
    const std::string& host, std::uint16_t rpc_port, std::uint16_t push_port) {
  auto rpc = net::RpcClient::connect(host, rpc_port);
  if (!rpc.ok()) return rpc.error();
  return std::unique_ptr<TcpDispatcherClient>(
      new TcpDispatcherClient(rpc.take(), host, push_port));
}

Result<InstanceId> TcpDispatcherClient::create_instance(ClientId client) {
  wire::CreateInstanceRequest request;
  request.client_id = client;
  auto reply = expect<wire::CreateInstanceReply>(rpc_.call(request));
  if (!reply.ok()) return reply.error();
  const InstanceId instance = reply.value().instance_id;
  if (push_port_ == 0) return instance;
  // Streaming regime: subscribe the instance on the push channel, then arm
  // the dispatcher's drain with SubscribeResults{ack_seq=0}. Any failure
  // here is absorbed — the instance simply stays in polling mode.
  auto stream = std::make_shared<Stream>();
  Status started = stream->receiver.start(
      host_, push_port_, kClientKeyBase + instance.value,
      [weak = std::weak_ptr<Stream>(stream)](const wire::Message& message) {
        if (auto live = weak.lock()) on_stream_frame(live, message);
      });
  if (started.ok()) {
    wire::SubscribeResults subscribe;
    subscribe.instance_id = instance;
    subscribe.ack_seq = 0;
    auto armed = expect<wire::ResultStream>(rpc_.call(subscribe));
    if (armed.ok()) {
      std::lock_guard lock(streams_mu_);
      streams_.emplace(instance.value, std::move(stream));
    } else {
      stream->receiver.stop();
    }
  }
  return instance;
}

void TcpDispatcherClient::on_stream_frame(const std::shared_ptr<Stream>& stream,
                                          const wire::Message& message) {
  const auto* frame = std::get_if<wire::ResultStream>(&message);
  if (frame == nullptr) return;  // e.g. a stray ClientNotify
  std::lock_guard lock(stream->mu);
  if (!stream->resync &&
      frame->seq == stream->last_seq + frame->results.size()) {
    stream->last_seq = frame->seq;
  } else {
    // Gap: a frame was lost in flight (or a stale pre-resubscribe frame
    // landed late). Keep the results — the delivered filter protects the
    // caller — but freeze the ack cursor: acknowledging past results we
    // never received would let the dispatcher discard them. The next
    // wait_results resubscribes from zero and the un-acked tail re-streams.
    stream->resync = true;
  }
  for (const auto& result : frame->results) stream->buffer.push_back(result);
  stream->cv.notify_all();
}

std::shared_ptr<TcpDispatcherClient::Stream> TcpDispatcherClient::find_stream(
    InstanceId instance) const {
  std::lock_guard lock(streams_mu_);
  auto it = streams_.find(instance.value);
  return it == streams_.end() ? nullptr : it->second;
}

bool TcpDispatcherClient::streaming(InstanceId instance) const {
  return find_stream(instance) != nullptr;
}

// One cumulative-ack round trip per this many streamed results. The value
// trades dispatcher mailbox residency (un-acked results stay buffered
// server-side) against RPC rate on the client's hot receive loop.
inline constexpr std::uint64_t kAckBatchResults = 8192;

Result<std::vector<TaskResult>> TcpDispatcherClient::wait_streamed(
    InstanceId instance, const std::shared_ptr<Stream>& stream,
    std::uint32_t max_results, double timeout_s) {
  std::vector<TaskResult> out;
  std::uint64_t ack = 0;
  bool resync = false;
  {
    std::unique_lock lock(stream->mu);
    stream->cv.wait_for(
        lock, std::chrono::duration<double>(std::max(0.0, timeout_s)),
        [&] { return !stream->buffer.empty() || stream->resync; });
    while (out.size() < max_results && !stream->buffer.empty()) {
      TaskResult result = std::move(stream->buffer.front());
      stream->buffer.pop_front();
      // The exactly-once filter: pushed frames, resubscribe re-streams and
      // poll fallbacks all funnel through `delivered`.
      if (stream->delivered.insert(result.task_id.value).second) {
        out.push_back(std::move(result));
      }
    }
    // Batched cumulative acks: one SubscribeResults round trip per
    // kAckBatchResults streamed results (or before a resync, to shrink
    // the re-stream) instead of one per drain — the steady-state receive
    // loop stays RPC-free, which is the point of push mode. Un-acked
    // results just sit in the dispatcher mailbox a little longer; on any
    // failure they re-deliver and the task-id filter absorbs them.
    const std::uint64_t pending = stream->last_seq - stream->acked_seq;
    if (pending > 0 && (pending >= kAckBatchResults || stream->resync)) {
      ack = stream->last_seq;
    }
    resync = stream->resync;
  }
  std::lock_guard ack_lock(stream->ack_mu);
  if (ack != 0) {
    // Cumulative ack: the dispatcher journals delivery and drops the acked
    // prefix from the mailbox. Failure is benign — un-acked results stay
    // in the mailbox and re-stream or poll later.
    wire::SubscribeResults request;
    request.instance_id = instance;
    request.ack_seq = ack;
    if (expect<wire::ResultStream>(rpc_.call(request)).ok()) {
      std::lock_guard lock(stream->mu);
      stream->acked_seq = std::max(stream->acked_seq, ack);
    }
  }
  if (resync) {
    // Re-arm from zero: the dispatcher resets its cursors and re-streams
    // everything still un-acked in the mailbox.
    wire::SubscribeResults request;
    request.instance_id = instance;
    request.ack_seq = 0;
    if (expect<wire::ResultStream>(rpc_.call(request)).ok()) {
      std::lock_guard lock(stream->mu);
      stream->resync = false;
      stream->last_seq = 0;
      stream->acked_seq = 0;
    }
  }
  if (!out.empty()) return out;
  // Nothing pushed within the timeout: one-shot poll. This is the lossy-
  // channel fallback — the dispatcher hands back its streamed-but-unacked
  // prefix (possibly duplicating buffered results; the filter absorbs it)
  // and re-arms its drain for anything left.
  wire::WaitResultsRequest request;
  request.instance_id = instance;
  request.max_results = max_results;
  request.timeout_s = 0;
  auto reply = expect<wire::WaitResultsReply>(rpc_.call(request));
  if (!reply.ok()) return reply.error();
  std::lock_guard lock(stream->mu);
  for (auto& result : reply.value().results) {
    if (stream->delivered.insert(result.task_id.value).second) {
      out.push_back(std::move(result));
    }
  }
  return out;
}

Result<std::uint64_t> TcpDispatcherClient::submit(InstanceId instance,
                                                  std::vector<TaskSpec> tasks) {
  wire::SubmitRequest request;
  request.instance_id = instance;
  request.tasks = std::move(tasks);
  auto reply = expect<wire::SubmitReply>(rpc_.call(request));
  if (!reply.ok()) return reply.error();
  return reply.value().accepted;
}

Result<std::vector<TaskResult>> TcpDispatcherClient::wait_results(
    InstanceId instance, std::uint32_t max_results, double timeout_s) {
  if (auto stream = find_stream(instance)) {
    return wait_streamed(instance, stream, max_results, timeout_s);
  }
  wire::WaitResultsRequest request;
  request.instance_id = instance;
  request.max_results = max_results;
  request.timeout_s = timeout_s;
  auto reply = expect<wire::WaitResultsReply>(rpc_.call(request));
  if (!reply.ok()) return reply.error();
  return std::move(reply.value().results);
}

Status TcpDispatcherClient::destroy_instance(InstanceId instance) {
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard lock(streams_mu_);
    auto it = streams_.find(instance.value);
    if (it != streams_.end()) {
      stream = std::move(it->second);
      streams_.erase(it);
    }
  }
  if (stream != nullptr) stream->receiver.stop();
  wire::DestroyInstanceRequest request;
  request.instance_id = instance;
  auto reply = expect<wire::DestroyInstanceReply>(rpc_.call(request));
  if (!reply.ok()) return reply.error();
  return ok_status();
}

Result<DispatcherStatus> TcpDispatcherClient::status() {
  auto reply = expect<wire::StatusReply>(rpc_.call(wire::StatusRequest{}));
  if (!reply.ok()) return reply.error();
  DispatcherStatus status;
  status.submitted = reply.value().submitted_tasks;
  status.queued = reply.value().queued_tasks;
  status.dispatched = reply.value().dispatched_tasks;
  status.completed = reply.value().completed_tasks;
  status.failed = reply.value().failed_tasks;
  status.retried = reply.value().retried_tasks;
  status.suspicions = reply.value().suspicions;
  status.false_suspicions = reply.value().false_suspicions;
  status.quarantined = reply.value().quarantined_tasks;
  status.registered_executors = reply.value().registered_executors;
  status.busy_executors = reply.value().busy_executors;
  status.idle_executors = reply.value().idle_executors;
  return status;
}

}  // namespace falkon::core
