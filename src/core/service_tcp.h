// TCP deployment glue.
//
// TcpDispatcherServer exposes a Dispatcher over two ports, mirroring the
// original Falkon's GT4-WS-container-plus-TCP-notification split (section
// 3.3): an RPC port for the WS-style operations (submit, get-work, deliver,
// status, ...) and a push port for the custom notification protocol.
// TcpExecutorHarness runs an executor against a remote dispatcher, and
// TcpDispatcherClient is the client-side stub.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/client.h"
#include "core/dispatcher.h"
#include "core/executor.h"
#include "core/task_engine.h"
#include "net/rpc.h"

namespace falkon::core {

/// Key namespace for client subscriptions on the shared notification
/// channel (executors subscribe with their ExecutorId; clients with
/// kClientKeyBase + InstanceId).
inline constexpr std::uint64_t kClientKeyBase = 1ULL << 62;

class TcpDispatcherServer {
 public:
  /// `obs` (optional) receives RPC/push counters: falkon.net.rpc.requests,
  /// falkon.net.rpc.errors, falkon.net.push.notifications.
  ///
  /// `reactor_loops` controls how many independent event loops serve the
  /// two ports. 0 (the default) aligns with the dispatcher: one loop per
  /// hardware thread, capped at the dispatcher's executor-shard count so
  /// the loop partition (executor id % n_loops) nests inside the registry
  /// partition (executor id % shards) and an executor's notify/push never
  /// crosses shards. Explicit values are clamped to [1, executor shards].
  ///
  /// `reuseport` switches both ports to SO_REUSEPORT accept mode: one
  /// sibling listener per reactor loop, kernel-balanced accepts, and each
  /// accepted connection stays on the loop that accepted it (no cross-
  /// thread handoff). The FALKON_REUSEPORT environment variable (any
  /// non-empty value but "0") forces it on — CI uses this to run the whole
  /// TCP suite in reuseport mode.
  explicit TcpDispatcherServer(Dispatcher& dispatcher,
                               obs::Obs* obs = nullptr,
                               int reactor_loops = 0,
                               bool reuseport = false);
  ~TcpDispatcherServer();

  TcpDispatcherServer(const TcpDispatcherServer&) = delete;
  TcpDispatcherServer& operator=(const TcpDispatcherServer&) = delete;

  /// `fault` (optional, test-only) is handed to both channels: reply-frame
  /// faults on the RPC port, push-frame faults on the notification port.
  Status start(std::uint16_t rpc_port = 0, std::uint16_t push_port = 0,
               fault::FaultInjector* fault = nullptr);
  void stop();

  [[nodiscard]] std::uint16_t rpc_port() const { return rpc_.port(); }
  [[nodiscard]] std::uint16_t push_port() const { return push_.port(); }
  /// The shared event-loop reactor (introspection: loop count, connection
  /// distribution). Valid between construction and destruction.
  [[nodiscard]] net::Reactor& reactor() { return reactor_; }

  /// Serve ReplFetch/ReplAck from this source (typically the dispatcher's
  /// ha::Journal), enabling a warm standby to tail the log over the RPC
  /// port. nullptr (the default) answers ReplFetch with kUnavailable.
  /// The source must outlive the server or be cleared first.
  void set_replication_source(ReplicationSource* source) {
    replication_.store(source, std::memory_order_release);
  }

  /// Fence this server to the dispatcher's promotion epoch (docs/HA.md):
  /// epoch-stamped submits and repl fetches that disagree with it are
  /// rejected, and every SubmitReply/RegisterReply/StatusReply advertises
  /// it so clients and executors learn the new epoch on reconnect.
  /// 0 (the default) disables fencing for pre-HA deployments.
  void set_epoch(std::uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  /// ExecutorSink that writes Notify frames on the notification channel.
  /// on_removed ties transport cleanup to the dispatcher's removal paths:
  /// without it, an executor evicted by the failure detector (no orderly
  /// DeregisterRequest) would leak its push subscription and its unretired
  /// bundle_seq entry — and `falkon.net.rpc.pending_bundles` would never
  /// drain to zero.
  struct PushSink final : ExecutorSink {
    PushSink(TcpDispatcherServer& server, obs::Counter* pushes)
        : server(server), pushes(pushes) {}
    void notify(ExecutorId id, std::uint64_t resource_key) override {
      wire::Notify message;
      message.executor_id = id;
      message.resource_key = resource_key;
      if (pushes) pushes->inc();
      (void)server.push_.push(id.value, message);
    }
    void on_removed(ExecutorId id) override {
      server.release_executor(id.value);
    }
    TcpDispatcherServer& server;
    obs::Counter* pushes;
  };

  /// ClientSink that writes ClientNotify frames {8} on the notification
  /// channel for subscribed clients (unsubscribed clients just poll).
  /// deliver() is the push-mode result stream (docs/PROTOCOL.md): a drained
  /// mailbox batch rides the same channel as a ResultStream frame, keyed by
  /// the instance's subscription. false (no subscriber) drops the instance
  /// back to notify+poll; a frame lost in flight after a true return is
  /// recovered by the SubscribeResults ack protocol, never by the sink.
  struct ClientPushSink final : ClientSink {
    explicit ClientPushSink(net::PushServer& push) : push(push) {}
    void notify(InstanceId instance, std::uint64_t results_ready) override {
      wire::ClientNotify message;
      message.instance_id = instance;
      message.completed = results_ready;
      (void)push.push(kClientKeyBase + instance.value, message);
    }
    bool deliver(InstanceId instance, std::uint64_t seq,
                 const std::vector<TaskResult>& results) override {
      wire::ResultStream message;
      message.instance_id = instance;
      message.seq = seq;
      message.results = results;
      return push.push(kClientKeyBase + instance.value, message).ok();
    }
    net::PushServer& push;
  };

  [[nodiscard]] wire::Message handle(const wire::Message& request);
  [[nodiscard]] wire::Message dispatch(const wire::Message& request);

  /// Drop all per-executor transport state: push subscription plus any
  /// unretired bundle_seq (counted as retired — the dispatcher has already
  /// requeued the bundle's tasks, so the sequence number is settled).
  void release_executor(std::uint64_t executor_value);

  Dispatcher& dispatcher_;
  obs::Obs* obs_{nullptr};
  std::atomic<ReplicationSource*> replication_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};
  /// One event loop shared by both channels: every executor costs two
  /// reactor-owned connections, zero threads. Declared before the servers
  /// so it outlives their stop() sequences.
  net::Reactor reactor_;
  net::RpcServer rpc_;
  net::PushServer push_;
  /// Recovery sweep rides the reactor's timer wheel instead of the
  /// dispatcher's dedicated sweeper thread (0 = sweeping disabled).
  net::TimerId sweep_timer_{0};
  bool sweeper_adopted_{false};
  /// Set by a fully-successful start(); stop() is a no-op otherwise (and
  /// after the first stop), so destroying a stopped server never touches
  /// the dispatcher reference again.
  bool started_{false};
  std::shared_ptr<PushSink> sink_;
  std::shared_ptr<ClientPushSink> client_sink_;
  obs::Counter* m_requests_{nullptr};
  obs::Counter* m_errors_{nullptr};
  obs::Counter* m_pushes_{nullptr};
  obs::Gauge* m_pending_bundles_{nullptr};
  /// Bundle-seq lifecycle counters: issued on every numbered (non-empty)
  /// TaskBundle, retired when the seq is acked, superseded by a newer seq,
  /// or settled by executor removal. At quiesce issued == retired — the
  /// testkit invariant checker asserts exactly this.
  obs::Counter* m_bundles_issued_{nullptr};
  obs::Counter* m_bundles_retired_{nullptr};

  /// Batched acknowledgements (section 3.4): every non-empty TaskBundle
  /// gets a sequence number; the executor acks the whole bundle by echoing
  /// it in its next ResultBundle.ack_seq instead of per-task acks.
  std::atomic<std::uint64_t> bundle_seq_{0};
  std::mutex bundles_mu_;
  /// executor id -> last bundle_seq sent and not yet echoed back.
  std::unordered_map<std::uint64_t, std::uint64_t> pending_bundles_;
};

/// Client-side subscription to result notifications {8}: connects to the
/// dispatcher's notification port and invokes the callback whenever new
/// results are ready for the instance — so clients need not poll tightly.
class TcpResultListener {
 public:
  using Callback = std::function<void(InstanceId, std::uint64_t results_ready)>;

  Status start(const std::string& host, std::uint16_t push_port,
               InstanceId instance, Callback callback);
  void stop();

 private:
  net::PushReceiver receiver_;
};

/// One executor connected to a remote dispatcher over TCP.
class TcpExecutorHarness {
 public:
  TcpExecutorHarness(Clock& clock, std::string host, std::uint16_t rpc_port,
                     std::uint16_t push_port, std::unique_ptr<TaskEngine> engine,
                     ExecutorOptions options);
  ~TcpExecutorHarness();

  TcpExecutorHarness(const TcpExecutorHarness&) = delete;
  TcpExecutorHarness& operator=(const TcpExecutorHarness&) = delete;

  /// Connects, registers (over RPC) and subscribes for notifications.
  Status start();
  void stop();

  [[nodiscard]] ExecutorRuntime& runtime() { return *runtime_; }
  /// Dispatcher epoch learned at the last (re-)registration.
  [[nodiscard]] std::uint64_t dispatcher_epoch() const { return link_.epoch(); }

 private:
  class Link final : public DispatcherLink {
   public:
    /// `fault` (optional) makes every (re)connect and request pass through
    /// the injector, exercising the reconnect path below. `obs` (optional)
    /// feeds the RPC client's pipelining instrumentation.
    Status connect(const std::string& host, std::uint16_t rpc_port,
                   fault::FaultInjector* fault = nullptr,
                   obs::Obs* obs = nullptr);

    Result<ExecutorId> register_executor(
        const wire::RegisterRequest& request) override;
    Result<std::vector<TaskSpec>> get_work(ExecutorId executor,
                                           std::uint32_t max_tasks) override;
    Result<std::vector<TaskSpec>> deliver_results(
        ExecutorId executor, std::vector<TaskResult> results,
        std::uint32_t want_tasks) override;
    Status deregister(ExecutorId executor, const std::string& reason) override;
    Status heartbeat(ExecutorId executor) override;

    /// Attach the executor's data plane (docs/DATA.md): registration and
    /// heartbeats piggyback its cache digest, and heartbeats drain its
    /// eviction notices into kDataEvict frames. Call before connect().
    void set_data(DataPlane* data) { data_ = data; }

    /// Dispatcher epoch from the last RegisterReply — bumps after the
    /// executor re-registers on a promoted standby (docs/HA.md).
    [[nodiscard]] std::uint64_t epoch() const {
      return epoch_.load(std::memory_order_acquire);
    }

   private:
    /// One RPC exchange with lazy reconnect: a transport-level failure
    /// (severed, truncated, or corrupted stream) discards the connection so
    /// the next attempt dials fresh — paired with the runtime's
    /// backoff-retry loop this is the executor's reconnect story.
    Result<wire::Message> roundtrip(const wire::Message& request);

    std::mutex mu_;
    std::string host_;
    std::uint16_t rpc_port_{0};
    fault::FaultInjector* fault_{nullptr};
    obs::Obs* obs_{nullptr};
    std::unique_ptr<net::RpcClient> rpc_;
    /// Highest TaskBundle.bundle_seq received; echoed as the batched ack
    /// in the next ResultBundle (guarded by mu_).
    std::uint64_t last_bundle_seq_{0};
    std::atomic<std::uint64_t> epoch_{0};
    DataPlane* data_{nullptr};
    /// Generation of the last digest the dispatcher acknowledged; ~0 forces
    /// a full digest on the next heartbeat (fresh link or re-registration).
    std::atomic<std::uint64_t> sent_digest_generation_{~0ull};
  };

  Clock& clock_;
  std::string host_;
  std::uint16_t rpc_port_;
  std::uint16_t push_port_;
  ExecutorOptions options_;
  Link link_;
  std::unique_ptr<TaskEngine> engine_;
  std::unique_ptr<ExecutorRuntime> runtime_;
  net::PushReceiver receiver_;
};

/// Client-side dispatcher stub over TCP.
///
/// Two result-delivery regimes:
///   * Polling (push_port == 0, the firewall-mode default): wait_results is
///     a WaitResultsRequest RPC per batch — one roundtrip each.
///   * Streaming (push_port != 0): create_instance subscribes the instance
///     on the notification channel (SubscribeResults{ack_seq=0}) and the
///     dispatcher pushes drained mailbox batches as ResultStream frames.
///     wait_results drains a local buffer and acknowledges cumulatively —
///     steady-state delivery costs zero request roundtrips. A severed or
///     lossy push channel degrades to one-shot polls (the dispatcher keeps
///     every un-acked result in the mailbox), and all three arrival paths
///     (pushed, ack-replied, polled) funnel through a per-instance task-id
///     filter, so the caller sees each result exactly once.
class TcpDispatcherClient final : public DispatcherClient {
 public:
  static Result<std::unique_ptr<TcpDispatcherClient>> connect(
      const std::string& host, std::uint16_t rpc_port,
      std::uint16_t push_port = 0);

  Result<InstanceId> create_instance(ClientId client) override;
  Result<std::uint64_t> submit(InstanceId instance,
                               std::vector<TaskSpec> tasks) override;
  Result<std::vector<TaskResult>> wait_results(InstanceId instance,
                                               std::uint32_t max_results,
                                               double timeout_s) override;
  Status destroy_instance(InstanceId instance) override;
  Result<DispatcherStatus> status() override;

  /// True when the instance is subscribed on the push channel (streaming
  /// regime); false in polling mode or after subscription failed.
  [[nodiscard]] bool streaming(InstanceId instance) const;

 private:
  /// Per-instance streaming state. `mu` guards everything but `receiver`
  /// (started once at subscription, stopped at destroy); `cv` wakes
  /// wait_results when the read thread lands a frame.
  struct Stream {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<TaskResult> buffer;
    /// Task ids already handed to the caller — the exactly-once filter for
    /// re-streams (resubscribe) and poll/push overlap.
    std::unordered_set<std::uint64_t> delivered;
    /// Highest contiguously-received ResultStream.seq; what we ack.
    std::uint64_t last_seq{0};
    /// Last seq acknowledged to the dispatcher via SubscribeResults.
    std::uint64_t acked_seq{0};
    /// A frame gap was observed (seq jumped past buffer+results): the next
    /// wait_results resubscribes from zero so the dispatcher re-streams its
    /// un-acked prefix. Acking across a gap would discard results the
    /// client never saw, so last_seq freezes until the resubscribe.
    bool resync{false};
    /// Serialises SubscribeResults RPCs for this instance: the dispatcher's
    /// cursor protocol assumes acks and resubscribes never interleave.
    std::mutex ack_mu;
    /// Declared last so its destructor joins the read thread before the
    /// state above is torn down.
    net::PushReceiver receiver;
  };

  TcpDispatcherClient(net::RpcClient rpc, std::string host,
                      std::uint16_t push_port)
      : rpc_(std::move(rpc)), host_(std::move(host)), push_port_(push_port) {}

  /// Streaming-regime wait: drain the local buffer (cv-timed), acknowledge
  /// cumulatively, fall back to a one-shot poll on timeout or resync.
  Result<std::vector<TaskResult>> wait_streamed(InstanceId instance,
                                                const std::shared_ptr<Stream>& stream,
                                                std::uint32_t max_results,
                                                double timeout_s);
  static void on_stream_frame(const std::shared_ptr<Stream>& stream,
                              const wire::Message& message);
  [[nodiscard]] std::shared_ptr<Stream> find_stream(InstanceId instance) const;

  net::RpcClient rpc_;
  std::string host_;
  std::uint16_t push_port_{0};
  mutable std::mutex streams_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Stream>> streams_;
};

}  // namespace falkon::core
