#include "core/service.h"

#include <algorithm>

#include "common/logging.h"

namespace falkon::core {

LocalExecutorHarness::LocalExecutorHarness(Clock& clock, Dispatcher& dispatcher,
                                           std::unique_ptr<TaskEngine> engine,
                                           ExecutorOptions options)
    : target_(std::make_shared<NotifyTarget>()),
      link_(dispatcher, target_),
      engine_(std::move(engine)),
      runtime_(std::make_unique<ExecutorRuntime>(clock, link_, *engine_,
                                                 options)) {
  std::lock_guard lock(target_->mu);
  target_->runtime = runtime_.get();
}

LocalExecutorHarness::~LocalExecutorHarness() {
  runtime_->stop();
  // Disconnect the sink before the runtime is destroyed: a notification job
  // still queued in the dispatcher's notify pool will find a null target.
  std::lock_guard lock(target_->mu);
  target_->runtime = nullptr;
}

Status LocalExecutorHarness::start() { return runtime_->start(); }

InProcFalkon::InProcFalkon(Clock& clock, DispatcherConfig config,
                           std::unique_ptr<DispatchPolicy> policy)
    : clock_(clock),
      dispatcher_(clock, config, std::move(policy)),
      client_(dispatcher_) {}

InProcFalkon::~InProcFalkon() { stop_executors(); }

Status InProcFalkon::add_executors(int count, const EngineFactory& factory,
                                   ExecutorOptions options) {
  for (int i = 0; i < count; ++i) {
    auto engine = factory(clock_);
    auto harness = std::make_unique<LocalExecutorHarness>(
        clock_, dispatcher_, std::move(engine), options);
    if (auto status = harness->start(); !status.ok()) return status;
    std::lock_guard lock(mu_);
    executors_.push_back(std::move(harness));
  }
  return ok_status();
}

std::size_t InProcFalkon::executor_count() const {
  std::lock_guard lock(mu_);
  return executors_.size();
}

std::vector<ExecutorStats> InProcFalkon::executor_stats() const {
  std::lock_guard lock(mu_);
  std::vector<ExecutorStats> stats;
  stats.reserve(executors_.size());
  for (const auto& harness : executors_) {
    stats.push_back(harness->runtime().stats());
  }
  return stats;
}

void InProcFalkon::stop_executors() {
  std::vector<std::unique_ptr<LocalExecutorHarness>> taken;
  {
    std::lock_guard lock(mu_);
    taken.swap(executors_);
  }
  for (auto& harness : taken) harness->runtime().request_stop();
  taken.clear();  // joins
}

FalkonCluster::FalkonCluster(Clock& clock, FalkonClusterConfig config)
    : clock_(clock),
      config_(std::move(config)),
      dispatcher_(clock, config_.dispatcher),
      client_(dispatcher_),
      scheduler_(clock, config_.lrm, config_.lrm_nodes),
      gram_(clock, scheduler_, config_.gram) {
  if (!config_.engine_factory) {
    config_.engine_factory = [](Clock& c) {
      return std::make_unique<SleepEngine>(c);
    };
  }
  std::unique_ptr<CentralizedReleasePolicy> central;
  if (config_.centralized_release_threshold > 0) {
    central = std::make_unique<QueueThresholdReleasePolicy>(
        config_.centralized_release_threshold);
  }
  provisioner_ = std::make_unique<Provisioner>(
      clock_, dispatcher_, gram_, scheduler_, config_.provisioner,
      make_acquisition_policy(config_.acquisition_policy),
      [this](const lrm::JobContext& context, AllocationId allocation) {
        return launch_allocation(context, allocation);
      },
      std::move(central));
}

FalkonCluster::~FalkonCluster() { stop(); }

int FalkonCluster::launch_allocation(const lrm::JobContext& context,
                                     AllocationId allocation) {
  const int per_node = std::max(1, config_.provisioner.executors_per_node);
  int launched = 0;
  for (const NodeId node : context.nodes) {
    for (int slot = 0; slot < per_node; ++slot) {
      ExecutorOptions options = config_.executor_template;
      options.node_id = node;
      options.allocation_id = allocation;
      auto harness = std::make_unique<LocalExecutorHarness>(
          clock_, dispatcher_, config_.engine_factory(clock_), options);
      harness->runtime().set_exit_listener([this, allocation, node](ExecutorId) {
        provisioner_->executor_exited(allocation, node);
      });
      if (auto status = harness->start(); !status.ok()) {
        LOG_WARN("cluster", "executor start failed: %s",
                 status.error().str().c_str());
        continue;
      }
      ++launched;
      std::lock_guard lock(mu_);
      if (stopping_) {
        harness->runtime().request_stop();
      }
      executors_.push_back(std::move(harness));
    }
  }
  return launched;
}

void FalkonCluster::reap_exited_locked() {
  // Harnesses whose runtime exited (idle-timeout release) are joined and
  // destroyed here, on the stepping thread, never on their own thread.
  auto dead_begin = std::partition(
      executors_.begin(), executors_.end(),
      [](const std::unique_ptr<LocalExecutorHarness>& h) {
        return h->runtime().running();
      });
  executors_.erase(dead_begin, executors_.end());
}

void FalkonCluster::step() {
  provisioner_->step();
  std::lock_guard lock(mu_);
  reap_exited_locked();
}

void FalkonCluster::start_drivers() { provisioner_->start_driver(); }

void FalkonCluster::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  provisioner_->stop_driver();
  std::vector<std::unique_ptr<LocalExecutorHarness>> taken;
  {
    std::lock_guard lock(mu_);
    taken.swap(executors_);
  }
  for (auto& harness : taken) harness->runtime().request_stop();
  taken.clear();
  scheduler_.stop_driver();
}

std::size_t FalkonCluster::live_executors() const {
  std::lock_guard lock(mu_);
  std::size_t live = 0;
  for (const auto& harness : executors_) {
    if (harness->runtime().running()) ++live;
  }
  return live;
}

}  // namespace falkon::core
