#include "core/task_engine.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace falkon::core {

TaskResult NoopEngine::run(const TaskSpec& task) {
  TaskResult result;
  result.task_id = task.id;
  result.exit_code = 0;
  result.state = TaskState::kCompleted;
  result.exec_time_s = 0.0;
  return result;
}

double SleepEngine::sleep_duration_s(const TaskSpec& task) {
  if (task.executable == "sleep" && !task.args.empty()) {
    char* end = nullptr;
    const double parsed = std::strtod(task.args.front().c_str(), &end);
    if (end && *end == '\0' && parsed >= 0) return parsed;
  }
  return task.estimated_runtime_s > 0 ? task.estimated_runtime_s : 0.0;
}

TaskResult SleepEngine::run(const TaskSpec& task) {
  const double start = clock_.now_s();
  const double duration = sleep_duration_s(task);
  if (duration > 0) clock_.sleep_s(duration);
  TaskResult result;
  result.task_id = task.id;
  result.exit_code = 0;
  result.state = TaskState::kCompleted;
  result.exec_time_s = clock_.now_s() - start;
  return result;
}

namespace {

/// Drain both pipes until EOF without deadlocking on full pipe buffers.
void drain_pipes(int out_fd, int err_fd, std::string& out, std::string& err,
                 bool capture) {
  char buffer[4096];
  bool out_open = true;
  bool err_open = true;
  while (out_open || err_open) {
    pollfd fds[2];
    nfds_t nfds = 0;
    int out_index = -1;
    int err_index = -1;
    if (out_open) {
      out_index = static_cast<int>(nfds);
      fds[nfds++] = {out_fd, POLLIN, 0};
    }
    if (err_open) {
      err_index = static_cast<int>(nfds);
      fds[nfds++] = {err_fd, POLLIN, 0};
    }
    if (::poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    auto drain_one = [&](int index, int fd, std::string& sink, bool& open) {
      if (index < 0) return;
      if ((fds[index].revents & (POLLIN | POLLHUP)) == 0) return;
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n <= 0) {
        open = false;
        return;
      }
      if (capture) sink.append(buffer, static_cast<std::size_t>(n));
    };
    drain_one(out_index, out_fd, out, out_open);
    drain_one(err_index, err_fd, err, err_open);
  }
}

}  // namespace

TaskResult ShellEngine::run(const TaskSpec& task) {
  TaskResult result;
  result.task_id = task.id;

  int out_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) {
    result.state = TaskState::kFailed;
    result.exit_code = 127;
    result.stderr_data = strf("pipe: %s", std::strerror(errno));
    return result;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.state = TaskState::kFailed;
    result.exit_code = 127;
    result.stderr_data = strf("fork: %s", std::strerror(errno));
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    return result;
  }

  if (pid == 0) {
    // Child: wire pipes, environment, working dir, exec.
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    if (!task.working_dir.empty()) {
      if (::chdir(task.working_dir.c_str()) != 0) _exit(126);
    }
    for (const auto& [key, value] : task.env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(task.executable.c_str()));
    for (const auto& arg : task.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(task.executable.c_str(), argv.data());
    _exit(127);
  }

  // Parent.
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  drain_pipes(out_pipe[0], err_pipe[0], result.stdout_data, result.stderr_data,
              task.capture_output);
  ::close(out_pipe[0]);
  ::close(err_pipe[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  } else {
    result.exit_code = 125;
  }
  result.state =
      result.exit_code == 0 ? TaskState::kCompleted : TaskState::kFailed;
  return result;
}

DataStagingEngine::DataStagingEngine(Clock& clock,
                                     const iomodel::IoModel& model,
                                     int concurrency,
                                     std::uint64_t cache_capacity_bytes)
    : clock_(clock), model_(model), concurrency_(concurrency) {
  if (cache_capacity_bytes > 0) {
    cache_ = std::make_unique<iomodel::DataCache>(cache_capacity_bytes);
  }
}

TaskResult DataStagingEngine::run(const TaskSpec& task) {
  const double start = clock_.now_s();
  double io_time = 0.0;
  bool cached = false;
  if (cache_ && !task.data_object.empty() &&
      (task.io_mode == IoMode::kRead || task.io_mode == IoMode::kReadWrite)) {
    std::lock_guard lock(cache_mu_);
    cached = cache_->access(task.data_object);
  }
  if (cached) {
    // Input already on local disk: only the (cheap) local read remains,
    // plus any write the task performs.
    TaskSpec local = task;
    local.data_location = DataLocation::kLocalDisk;
    io_time = model_.io_time_s(local, concurrency_.load());
  } else {
    io_time = model_.io_time_s(task, concurrency_.load());
    if (cache_ && !task.data_object.empty()) {
      std::lock_guard lock(cache_mu_);
      cache_->insert(task.data_object, task.input_bytes);
    }
  }
  const double compute = task.estimated_runtime_s;
  const double total = io_time + compute;
  if (total > 0) clock_.sleep_s(total);

  TaskResult result;
  result.task_id = task.id;
  result.exit_code = 0;
  result.state = TaskState::kCompleted;
  result.exec_time_s = clock_.now_s() - start;
  return result;
}

std::uint64_t DataStagingEngine::cache_hits() const {
  std::lock_guard lock(cache_mu_);
  return cache_ ? cache_->hits() : 0;
}

std::uint64_t DataStagingEngine::cache_misses() const {
  std::lock_guard lock(cache_mu_);
  return cache_ ? cache_->misses() : 0;
}

}  // namespace falkon::core
