// The Falkon executor runtime (paper sections 3.2-3.3).
//
// Lifecycle: register with the dispatcher; wait for a notification {3};
// pull work {4,5}; execute; deliver results {6}; receive the ack with
// optionally piggy-backed next tasks {7}; repeat. Under the distributed
// resource-release policy the executor deregisters itself after a
// configured idle time.
//
// The runtime talks to the dispatcher through a DispatcherLink so the same
// loop runs in-process (direct calls) and across TCP (RPC + notification
// channel).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/task.h"
#include "core/task_engine.h"
#include "fault/backoff.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "wire/message.h"

namespace falkon::core {

class DataPlane;

using wire::kReleaseResourceKey;

/// Executor's view of the dispatcher.
class DispatcherLink {
 public:
  virtual ~DispatcherLink() = default;

  virtual Result<ExecutorId> register_executor(
      const wire::RegisterRequest& request) = 0;
  virtual Result<std::vector<TaskSpec>> get_work(ExecutorId executor,
                                                 std::uint32_t max_tasks) = 0;
  /// Deliver results; returns piggy-backed next tasks (may be empty).
  virtual Result<std::vector<TaskSpec>> deliver_results(
      ExecutorId executor, std::vector<TaskResult> results,
      std::uint32_t want_tasks) = 0;
  virtual Status deregister(ExecutorId executor, const std::string& reason) = 0;
  /// Liveness beacon; links without a control channel can keep the no-op
  /// default (the dispatcher then falls back to replay timeouts alone).
  virtual Status heartbeat(ExecutorId executor) {
    (void)executor;
    return ok_status();
  }
};

struct ExecutorOptions {
  NodeId node_id;
  std::string host{"localhost"};
  AllocationId allocation_id;
  /// Tasks pulled per exchange (dispatcher-executor bundling; paper uses 1).
  std::uint32_t max_bundle{1};
  /// Piggy-back request size on result delivery (0 disables; paper enables).
  std::uint32_t piggyback_tasks{1};
  /// Adaptive wire bundling: ignore max_bundle/piggyback_tasks and send the
  /// wire::kAdaptiveBundle / wire::kAdaptiveWant sentinels instead, letting
  /// the dispatcher size each bundle from current queue depth (capped by
  /// DispatcherConfig::max_adaptive_bundle and max_bundle_runtime_s).
  bool adaptive_bundle{false};
  /// Distributed release policy: deregister after this much idle model time
  /// (<= 0: never release — Falkon-inf).
  double idle_timeout_s{0.0};
  /// Pre-fetching (paper section 6 future work): request the next task
  /// while the current one still runs, overlapping dispatch latency with
  /// execution.
  bool prefetch{false};
  /// Firewall-bypass polling mode (paper section 6: "We have implemented a
  /// polling mechanism to bypass any firewall issues on executors"): when
  /// > 0 the executor never waits for push notifications — it polls
  /// get_work every poll_interval_s of model time instead, trading
  /// responsiveness and dispatcher load for needing only outbound
  /// connections. 0 = hybrid push/pull (the paper's preferred model).
  double poll_interval_s{0.0};
  /// Push-mode takeover probe (docs/HA.md): in hybrid push/pull mode an
  /// idle executor waits on notifications — but a freshly promoted standby
  /// knows no executor ids and can never notify it. Waking at most every
  /// this many model seconds to issue one get_work turns the standby's
  /// kNotFound answer into a re-registration, bounding how long an idle
  /// executor can stay stranded after a failover. 0 disables the probe
  /// (pre-HA behaviour); ignored in polling mode, which already wakes.
  double takeover_probe_s{1.0};

  /// Observability context; nullptr disables instrumentation at zero cost.
  obs::Obs* obs{nullptr};

  /// Data-diffusion plane (docs/DATA.md): when set, the TCP transport
  /// piggybacks this plane's cache digest on registration and heartbeats
  /// and drains its eviction notices. The runtime itself never touches it —
  /// staging happens inside the task engine. Must outlive the executor.
  DataPlane* data{nullptr};

  // ---- failure detection & recovery (docs/FAULTS.md) ----

  /// Send a heartbeat to the dispatcher every this many seconds of model
  /// time (0 disables; pair with DispatcherConfig::heartbeat_timeout_s).
  double heartbeat_interval_s{0.0};
  /// Retry a failed get_work/deliver_results this many times (with
  /// exponential backoff) before declaring the dispatcher unreachable.
  /// 0 = fail fast (the original behaviour).
  int link_retries{0};
  /// Retry a failed registration this many times with the same backoff.
  int register_retries{0};
  /// Backoff schedule for link and registration retries.
  fault::BackoffConfig backoff;
  /// Fault injection (crash / hang / slow-node at Site::kExecutorTask);
  /// nullptr in production.
  fault::FaultInjector* fault{nullptr};
};

struct ExecutorStats {
  std::uint64_t tasks_executed{0};
  std::uint64_t notifications{0};
  std::uint64_t empty_polls{0};
  std::uint64_t link_retries{0};    // failed link calls that were retried
  std::uint64_t heartbeats_sent{0};
  /// Successful re-registrations after the dispatcher forgot us (a promoted
  /// standby knows no executor ids — docs/HA.md failover sequence).
  std::uint64_t reregistrations{0};
  double busy_time_s{0.0};
};

class ExecutorRuntime {
 public:
  ExecutorRuntime(Clock& clock, DispatcherLink& link, TaskEngine& engine,
                  ExecutorOptions options);
  ~ExecutorRuntime();

  ExecutorRuntime(const ExecutorRuntime&) = delete;
  ExecutorRuntime& operator=(const ExecutorRuntime&) = delete;

  /// Register and start the work loop on a background thread.
  Status start();

  /// Notification entry point {3}: wakes the work loop. A
  /// kReleaseResourceKey asks the executor to shut down (centralized
  /// release policy).
  void notify(std::uint64_t resource_key);

  /// Ask the loop to finish the current task and stop (does not join).
  void request_stop();

  /// Stop and join.
  void stop();

  /// Blocks until the loop exited (self-release or stop). Returns reason.
  void join();

  [[nodiscard]] ExecutorId id() const {
    return ExecutorId{id_value_.load(std::memory_order_acquire)};
  }
  [[nodiscard]] bool running() const { return running_.load(); }
  /// True after an injected crash killed the runtime (the executor exited
  /// without deregistering — exactly what a real worker death looks like).
  [[nodiscard]] bool crashed() const { return crashed_.load(); }
  [[nodiscard]] ExecutorStats stats() const;

  /// Invoked (from the runtime's thread) right after the loop exits;
  /// used by the provisioner to track self-released executors.
  void set_exit_listener(std::function<void(ExecutorId)> listener);

  /// Invoked (from the work thread) after a successful re-registration
  /// changed id(); transports use it to re-key their notification
  /// subscription (docs/HA.md failover).
  void set_id_listener(std::function<void(ExecutorId)> listener);

 private:
  void work_loop();
  void heartbeat_loop();
  /// Wait for a notification or idle timeout; true = work may be available,
  /// false = stop (released or shutting down).
  bool wait_for_wakeup();
  /// Interruptible real-time sleep of `model_s` model seconds; returns
  /// early (false) if a stop was requested meanwhile.
  bool interruptible_sleep(double model_s);
  /// Run a link call, retrying up to options_.link_retries times with
  /// exponential backoff on failure.
  template <class Call>
  auto call_with_retry(Call&& call) -> decltype(call());
  /// Register again after the dispatcher forgot us (failover to a promoted
  /// standby). On success updates id() and fires the id listener.
  bool try_reregister();

  Clock& clock_;
  DispatcherLink& link_;
  TaskEngine& engine_;
  ExecutorOptions options_;

  /// Atomic because the heartbeat thread and transports read id() while
  /// the work thread may swap it during a failover re-registration.
  std::atomic<std::uint64_t> id_value_{0};
  std::thread thread_;
  std::thread heartbeat_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> crashed_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  bool notified_{false};

  mutable std::mutex stats_mu_;
  ExecutorStats stats_;
  std::function<void(ExecutorId)> exit_listener_;
  std::function<void(ExecutorId)> id_listener_;

  // Observability handles (null when options_.obs is null).
  obs::Tracer* tracer_{nullptr};
  obs::Counter* m_tasks_{nullptr};
  obs::Counter* m_notifications_{nullptr};
  obs::Counter* m_empty_polls_{nullptr};
  obs::Histogram* m_exec_time_{nullptr};
};

}  // namespace falkon::core
