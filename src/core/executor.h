// The Falkon executor runtime (paper sections 3.2-3.3).
//
// Lifecycle: register with the dispatcher; wait for a notification {3};
// pull work {4,5}; execute; deliver results {6}; receive the ack with
// optionally piggy-backed next tasks {7}; repeat. Under the distributed
// resource-release policy the executor deregisters itself after a
// configured idle time.
//
// The runtime talks to the dispatcher through a DispatcherLink so the same
// loop runs in-process (direct calls) and across TCP (RPC + notification
// channel).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/task.h"
#include "core/task_engine.h"
#include "obs/obs.h"
#include "wire/message.h"

namespace falkon::core {

using wire::kReleaseResourceKey;

/// Executor's view of the dispatcher.
class DispatcherLink {
 public:
  virtual ~DispatcherLink() = default;

  virtual Result<ExecutorId> register_executor(
      const wire::RegisterRequest& request) = 0;
  virtual Result<std::vector<TaskSpec>> get_work(ExecutorId executor,
                                                 std::uint32_t max_tasks) = 0;
  /// Deliver results; returns piggy-backed next tasks (may be empty).
  virtual Result<std::vector<TaskSpec>> deliver_results(
      ExecutorId executor, std::vector<TaskResult> results,
      std::uint32_t want_tasks) = 0;
  virtual Status deregister(ExecutorId executor, const std::string& reason) = 0;
};

struct ExecutorOptions {
  NodeId node_id;
  std::string host{"localhost"};
  AllocationId allocation_id;
  /// Tasks pulled per exchange (dispatcher-executor bundling; paper uses 1).
  std::uint32_t max_bundle{1};
  /// Piggy-back request size on result delivery (0 disables; paper enables).
  std::uint32_t piggyback_tasks{1};
  /// Distributed release policy: deregister after this much idle model time
  /// (<= 0: never release — Falkon-inf).
  double idle_timeout_s{0.0};
  /// Pre-fetching (paper section 6 future work): request the next task
  /// while the current one still runs, overlapping dispatch latency with
  /// execution.
  bool prefetch{false};
  /// Firewall-bypass polling mode (paper section 6: "We have implemented a
  /// polling mechanism to bypass any firewall issues on executors"): when
  /// > 0 the executor never waits for push notifications — it polls
  /// get_work every poll_interval_s of model time instead, trading
  /// responsiveness and dispatcher load for needing only outbound
  /// connections. 0 = hybrid push/pull (the paper's preferred model).
  double poll_interval_s{0.0};

  /// Observability context; nullptr disables instrumentation at zero cost.
  obs::Obs* obs{nullptr};
};

struct ExecutorStats {
  std::uint64_t tasks_executed{0};
  std::uint64_t notifications{0};
  std::uint64_t empty_polls{0};
  double busy_time_s{0.0};
};

class ExecutorRuntime {
 public:
  ExecutorRuntime(Clock& clock, DispatcherLink& link, TaskEngine& engine,
                  ExecutorOptions options);
  ~ExecutorRuntime();

  ExecutorRuntime(const ExecutorRuntime&) = delete;
  ExecutorRuntime& operator=(const ExecutorRuntime&) = delete;

  /// Register and start the work loop on a background thread.
  Status start();

  /// Notification entry point {3}: wakes the work loop. A
  /// kReleaseResourceKey asks the executor to shut down (centralized
  /// release policy).
  void notify(std::uint64_t resource_key);

  /// Ask the loop to finish the current task and stop (does not join).
  void request_stop();

  /// Stop and join.
  void stop();

  /// Blocks until the loop exited (self-release or stop). Returns reason.
  void join();

  [[nodiscard]] ExecutorId id() const { return id_; }
  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] ExecutorStats stats() const;

  /// Invoked (from the runtime's thread) right after the loop exits;
  /// used by the provisioner to track self-released executors.
  void set_exit_listener(std::function<void(ExecutorId)> listener);

 private:
  void work_loop();
  /// Wait for a notification or idle timeout; true = work may be available,
  /// false = stop (released or shutting down).
  bool wait_for_wakeup();

  Clock& clock_;
  DispatcherLink& link_;
  TaskEngine& engine_;
  ExecutorOptions options_;

  ExecutorId id_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  bool notified_{false};

  mutable std::mutex stats_mu_;
  ExecutorStats stats_;
  std::function<void(ExecutorId)> exit_listener_;

  // Observability handles (null when options_.obs is null).
  obs::Tracer* tracer_{nullptr};
  obs::Counter* m_tasks_{nullptr};
  obs::Counter* m_notifications_{nullptr};
  obs::Counter* m_empty_polls_{nullptr};
  obs::Histogram* m_exec_time_{nullptr};
};

}  // namespace falkon::core
