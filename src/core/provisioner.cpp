#include "core/provisioner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace falkon::core {

Provisioner::Provisioner(Clock& clock, Dispatcher& dispatcher,
                         lrm::Gram4Gateway& gram,
                         lrm::BatchScheduler& scheduler,
                         ProvisionerConfig config,
                         std::unique_ptr<AcquisitionPolicy> acquisition,
                         ExecutorLauncher launcher,
                         std::unique_ptr<CentralizedReleasePolicy> central)
    : clock_(clock),
      dispatcher_(dispatcher),
      gram_(gram),
      scheduler_(scheduler),
      config_(config),
      acquisition_(acquisition ? std::move(acquisition)
                               : std::make_unique<AllAtOncePolicy>()),
      launcher_(std::move(launcher)),
      central_release_(std::move(central)) {
  if (config_.obs != nullptr) {
    obs::Registry& reg = config_.obs->registry();
    m_allocations_ = &reg.counter("falkon.provisioner.allocations_requested");
    m_allocated_ = &reg.gauge("falkon.provisioner.pending_executors");
    m_registered_idle_ = &reg.gauge("falkon.provisioner.idle_executors");
    m_active_ = &reg.gauge("falkon.provisioner.active_executors");
    m_queued_ = &reg.gauge("falkon.provisioner.queued_tasks");
  }
}

Provisioner::~Provisioner() { stop_driver(); }

void Provisioner::step() {
  // Drive the substrate: the gateway hands pending requests to the LRM and
  // the LRM processes its scheduling cycle and job transitions. Their
  // callbacks (allocation start/done) run on this thread, lock-free.
  gram_.step();
  scheduler_.step();
  dispatcher_.check_replays();

  const DispatcherStatus status = dispatcher_.status();
  {
    std::lock_guard lock(mu_);
    AcquisitionContext ctx;
    ctx.queued_tasks = static_cast<int>(status.queued);
    ctx.busy_executors = static_cast<int>(status.busy_executors);
    ctx.idle_executors = static_cast<int>(status.idle_executors);
    ctx.pending_executors = pending_executors_;
    ctx.max_executors = config_.max_executors;
    ctx.lrm_free_nodes = scheduler_.free_nodes();
    ctx.executors_per_node = config_.executors_per_node;

    for (const int size : acquisition_->plan(ctx)) {
      request_allocation_locked(size);
    }
    // Maintain the configured floor regardless of demand.
    const int supply =
        static_cast<int>(status.registered_executors) + pending_executors_;
    if (supply < config_.min_executors) {
      request_allocation_locked(config_.min_executors - supply);
    }

    const double now = clock_.now_s();
    allocated_series_.add(now, pending_executors_);
    registered_series_.add(now, status.idle_executors);
    active_series_.add(now, status.busy_executors);
    queued_series_.add(now, static_cast<double>(status.queued));
    if (m_allocated_) {
      m_allocated_->set(pending_executors_);
      m_registered_idle_->set(status.idle_executors);
      m_active_->set(status.busy_executors);
      m_queued_->set(static_cast<double>(status.queued));
    }
  }

  if (central_release_) {
    ReleaseContext rctx;
    rctx.queued_tasks = static_cast<int>(status.queued);
    rctx.idle_executors = static_cast<int>(status.idle_executors);
    rctx.registered_executors = static_cast<int>(status.registered_executors);
    rctx.min_executors = config_.min_executors;
    const int release = central_release_->executors_to_release(rctx);
    if (release > 0) (void)dispatcher_.request_release(release);
  }
}

void Provisioner::request_allocation_locked(int executors) {
  if (executors <= 0) return;
  if (m_allocations_) m_allocations_->inc();
  const int per_node = std::max(1, config_.executors_per_node);
  const int nodes =
      static_cast<int>(std::ceil(static_cast<double>(executors) /
                                 static_cast<double>(per_node)));
  const int granted_executors = nodes * per_node;

  const AllocationId alloc_id = allocation_ids_.next();
  Allocation alloc;
  alloc.id = alloc_id;
  alloc.executors_requested = granted_executors;
  alloc.jobs_pending_start = nodes;

  // One GRAM request backing `nodes` single-node jobs: the whole batch
  // pays GRAM's request overhead once ("all-at-once" semantics), but each
  // node frees as soon as its own executors release themselves.
  std::vector<lrm::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    lrm::JobSpec spec;
    spec.nodes = 1;
    spec.walltime_s = config_.allocation_walltime_s;
    spec.run_time_s = -1.0;  // released when the node's executors exit
    spec.on_start = [this, alloc_id, per_node](const lrm::JobContext& context) {
      int launched = 0;
      if (launcher_) launched = launcher_(context, alloc_id);
      bool complete_now = false;
      {
        std::lock_guard lock(mu_);
        auto it = allocations_.find(alloc_id.value);
        if (it == allocations_.end()) return;
        Allocation& a = it->second;
        NodeLease& lease = a.leases[context.nodes.front().value];
        lease.lrm_job = context.job_id;
        lease.started = true;
        lease.executors_live = launched;
        if (a.jobs_pending_start > 0) --a.jobs_pending_start;
        pending_executors_ = std::max(0, pending_executors_ - per_node);
        stats_.executors_launched += static_cast<std::uint64_t>(launched);
        if (launched == 0) {
          lease.finished = true;
          complete_now = true;
        }
      }
      if (complete_now) (void)scheduler_.complete(context.job_id);
    };
    spec.on_done = [this, alloc_id, per_node](JobId job, bool) {
      std::lock_guard lock(mu_);
      auto it = allocations_.find(alloc_id.value);
      if (it == allocations_.end()) return;
      Allocation& a = it->second;
      bool had_started = false;
      for (auto& [node, lease] : a.leases) {
        if (lease.lrm_job == job) {
          had_started = lease.started;
          lease.finished = true;
          break;
        }
      }
      if (!had_started) {
        // Cancelled/killed before starting: these executors never arrive.
        if (a.jobs_pending_start > 0) --a.jobs_pending_start;
        pending_executors_ = std::max(0, pending_executors_ - per_node);
      }
      bool all_done = a.jobs_pending_start == 0;
      for (const auto& [node, lease] : a.leases) {
        all_done = all_done && lease.finished;
      }
      if (all_done) ++stats_.allocations_completed;
    };
    specs.push_back(std::move(spec));
  }

  auto submitted = gram_.submit_batch(std::move(specs));
  if (!submitted.ok()) {
    LOG_WARN("provisioner", "allocation request failed: %s",
             submitted.error().str().c_str());
    return;
  }
  allocations_[alloc_id.value] = std::move(alloc);
  pending_executors_ += granted_executors;
  ++stats_.allocations_requested;
  LOG_DEBUG("provisioner", "requested %d nodes (%d executors) in one request",
            nodes, granted_executors);
}

void Provisioner::executor_exited(AllocationId allocation, NodeId node) {
  bool complete = false;
  JobId lrm_job;
  {
    std::lock_guard lock(mu_);
    ++stats_.executors_exited;
    auto it = allocations_.find(allocation.value);
    if (it == allocations_.end()) return;
    Allocation& a = it->second;
    auto lease_it = a.leases.find(node.value);
    if (lease_it == a.leases.end()) return;
    NodeLease& lease = lease_it->second;
    if (lease.executors_live > 0) --lease.executors_live;
    if (lease.executors_live == 0 && lease.started && !lease.finished) {
      complete = true;
      lrm_job = lease.lrm_job;
    }
  }
  // This node's executors are all gone: give the node back immediately.
  if (complete) (void)scheduler_.complete(lrm_job);
}

ProvisionerStats Provisioner::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

int Provisioner::pending_executors() const {
  std::lock_guard lock(mu_);
  return pending_executors_;
}

void Provisioner::start_driver() {
  stop_driver();
  driver_stop_.store(false);
  driver_ = std::thread([this] {
    while (!driver_stop_.load()) {
      step();
      clock_.sleep_s(config_.poll_interval_s);
    }
  });
}

void Provisioner::stop_driver() {
  driver_stop_.store(true);
  if (driver_.joinable()) driver_.join();
}

}  // namespace falkon::core
