#include "core/policies.h"

#include <algorithm>

namespace falkon::core {

std::size_t DispatchPolicy::select_task(
    const ExecutorCandidate&, const std::vector<const TaskSpec*>&) {
  return 0;
}

std::size_t DataAwarePolicy::select(
    const TaskSpec& task, const std::vector<ExecutorCandidate>& idle) {
  if (!task.data_object.empty()) {
    const std::size_t limit = std::min(idle.size(), lookahead_);
    for (std::size_t i = 0; i < limit; ++i) {
      if (idle[i].has_cached && idle[i].has_cached(task.data_object)) return i;
    }
  }
  return 0;
}

std::size_t DataAwarePolicy::select_task(
    const ExecutorCandidate& self, const std::vector<const TaskSpec*>& queue) {
  if (self.has_cached) {
    const std::size_t limit = std::min(queue.size(), lookahead_);
    for (std::size_t i = 0; i < limit; ++i) {
      if (!queue[i]->data_object.empty() &&
          self.has_cached(queue[i]->data_object)) {
        return i;
      }
    }
  }
  return 0;
}

std::size_t GoodCacheComputePolicy::select(
    const TaskSpec& task, const std::vector<ExecutorCandidate>& idle) {
  if (!task.data_object.empty()) {
    const std::size_t limit = std::min(idle.size(), lookahead_);
    for (std::size_t i = 0; i < limit; ++i) {
      if (idle[i].has_cached && idle[i].has_cached(task.data_object)) return i;
    }
  }
  return 0;
}

std::size_t GoodCacheComputePolicy::select_task(
    const ExecutorCandidate& self, const std::vector<const TaskSpec*>& queue) {
  const std::size_t limit = std::min(queue.size(), lookahead_);
  std::size_t first_dataless = queue.size();
  for (std::size_t i = 0; i < limit; ++i) {
    if (queue[i]->data_object.empty()) {
      if (first_dataless == queue.size()) first_dataless = i;
      continue;
    }
    if (self.has_cached && self.has_cached(queue[i]->data_object)) return i;
  }
  // No self-cached data task in the window: take the first pure-compute task
  // so data tasks keep waiting for their cache holders. Fall back to the
  // head when the whole window is data-bound.
  if (first_dataless < queue.size()) return first_dataless;
  return 0;
}

int AcquisitionPolicy::deficit(const AcquisitionContext& ctx) {
  const int supply = ctx.busy_executors + ctx.idle_executors +
                     ctx.pending_executors;
  int demand = ctx.queued_tasks + ctx.busy_executors;
  if (ctx.max_executors > 0) demand = std::min(demand, ctx.max_executors);
  return std::max(0, demand - supply);
}

std::vector<int> AllAtOncePolicy::plan(const AcquisitionContext& ctx) {
  const int need = deficit(ctx);
  if (need <= 0) return {};
  return {need};
}

std::vector<int> OneAtATimePolicy::plan(const AcquisitionContext& ctx) {
  const int need = deficit(ctx);
  return std::vector<int>(static_cast<std::size_t>(std::max(0, need)), 1);
}

std::vector<int> AdditivePolicy::plan(const AcquisitionContext& ctx) {
  int need = deficit(ctx);
  std::vector<int> requests;
  int size = 1;
  while (need > 0) {
    const int request = std::min(size, need);
    requests.push_back(request);
    need -= request;
    size += increment_;
  }
  return requests;
}

std::vector<int> ExponentialPolicy::plan(const AcquisitionContext& ctx) {
  int need = deficit(ctx);
  std::vector<int> requests;
  int size = 1;
  while (need > 0) {
    const int request = std::min(size, need);
    requests.push_back(request);
    need -= request;
    size *= 2;
  }
  return requests;
}

std::vector<int> SystemAvailablePolicy::plan(const AcquisitionContext& ctx) {
  int need = deficit(ctx);
  const int available = ctx.lrm_free_nodes * std::max(1, ctx.executors_per_node);
  need = std::min(need, available);
  if (need <= 0) return {};
  return {need};
}

std::unique_ptr<AcquisitionPolicy> make_acquisition_policy(
    const std::string& name) {
  if (name == "all-at-once") return std::make_unique<AllAtOncePolicy>();
  if (name == "one-at-a-time") return std::make_unique<OneAtATimePolicy>();
  if (name == "additive") return std::make_unique<AdditivePolicy>();
  if (name == "exponential") return std::make_unique<ExponentialPolicy>();
  if (name == "available") return std::make_unique<SystemAvailablePolicy>();
  return nullptr;
}

int QueueThresholdReleasePolicy::executors_to_release(const ReleaseContext& ctx) {
  const int releasable =
      std::max(0, std::min(ctx.idle_executors,
                           ctx.registered_executors - ctx.min_executors));
  if (releasable == 0) return 0;
  if (ctx.queued_tasks == 0) return releasable;
  if (ctx.queued_tasks < threshold_) return 1;
  return 0;
}

}  // namespace falkon::core
