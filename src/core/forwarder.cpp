#include "core/forwarder.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace falkon::core {

Forwarder::Forwarder(std::vector<DispatcherClient*> backends,
                     RoutingPolicy routing)
    : backends_(std::move(backends)),
      routing_(routing),
      routed_(backends_.size(), 0) {}

Result<InstanceId> Forwarder::create_instance(ClientId client) {
  if (backends_.empty()) {
    return make_error(ErrorCode::kUnavailable, "forwarder has no backends");
  }
  Route route;
  route.per_backend.reserve(backends_.size());
  for (auto* backend : backends_) {
    auto instance = backend->create_instance(client);
    if (!instance.ok()) {
      // Roll back the instances already created.
      for (std::size_t i = 0; i < route.per_backend.size(); ++i) {
        (void)backends_[i]->destroy_instance(route.per_backend[i]);
      }
      return instance.error();
    }
    route.per_backend.push_back(instance.value());
  }
  std::lock_guard lock(mu_);
  route.composite = composite_ids_.next();
  const InstanceId id = route.composite;
  routes_.push_back(std::move(route));
  return id;
}

std::size_t Forwarder::pick_backend_locked() {
  if (routing_ == RoutingPolicy::kRoundRobin) {
    const std::size_t pick = next_backend_;
    next_backend_ = (next_backend_ + 1) % backends_.size();
    return pick;
  }
  // Least-loaded: smallest backlog per registered executor. Executor-less
  // backends rank last but stay eligible (their provisioner may be about
  // to deliver capacity).
  std::size_t best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    auto status = backends_[i]->status();
    if (!status.ok()) continue;
    const double capacity =
        std::max<std::uint32_t>(1, status.value().registered_executors);
    const double backlog = static_cast<double>(status.value().queued +
                                               status.value().dispatched);
    const double load = backlog / capacity +
                        (status.value().registered_executors == 0 ? 1e6 : 0);
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

Result<std::uint64_t> Forwarder::submit(InstanceId instance,
                                        std::vector<TaskSpec> tasks) {
  std::vector<InstanceId> per_backend;
  std::size_t first_choice;
  {
    std::lock_guard lock(mu_);
    auto it = std::find_if(routes_.begin(), routes_.end(),
                           [&](const Route& r) { return r.composite == instance; });
    if (it == routes_.end()) {
      return make_error(ErrorCode::kNotFound, "no such forwarder instance");
    }
    per_backend = it->per_backend;
    first_choice = pick_backend_locked();
  }

  // Try the chosen backend, then fall over to the others.
  for (std::size_t attempt = 0; attempt < backends_.size(); ++attempt) {
    const std::size_t b = (first_choice + attempt) % backends_.size();
    auto accepted = backends_[b]->submit(per_backend[b], tasks);
    if (accepted.ok()) {
      std::lock_guard lock(mu_);
      routed_[b] += accepted.value();
      return accepted;
    }
    LOG_WARN("forwarder", "backend %zu rejected submit: %s", b,
             accepted.error().str().c_str());
  }
  return make_error(ErrorCode::kUnavailable, "all backends rejected submit");
}

Result<std::vector<TaskResult>> Forwarder::wait_results(
    InstanceId instance, std::uint32_t max_results, double timeout_s) {
  std::vector<InstanceId> per_backend;
  std::size_t rotor;
  {
    std::lock_guard lock(mu_);
    auto it = std::find_if(routes_.begin(), routes_.end(),
                           [&](const Route& r) { return r.composite == instance; });
    if (it == routes_.end()) {
      return make_error(ErrorCode::kNotFound, "no such forwarder instance");
    }
    per_backend = it->per_backend;
    rotor = wait_rotor_;
    wait_rotor_ = (wait_rotor_ + 1) % backends_.size();
  }

  std::vector<TaskResult> collected;
  // Non-blocking sweep over every backend first.
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (collected.size() >= max_results) break;
    auto batch = backends_[b]->wait_results(
        per_backend[b],
        static_cast<std::uint32_t>(max_results - collected.size()), 0.0);
    if (!batch.ok()) continue;
    for (auto& result : batch.value()) collected.push_back(std::move(result));
  }
  if (!collected.empty()) return collected;

  // Nothing ready: spend the timeout blocked on one backend (rotating
  // across calls), then sweep once more.
  auto blocking = backends_[rotor]->wait_results(per_backend[rotor],
                                                 max_results, timeout_s);
  if (blocking.ok()) {
    for (auto& result : blocking.value()) collected.push_back(std::move(result));
  }
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (collected.size() >= max_results) break;
    if (b == rotor) continue;
    auto batch = backends_[b]->wait_results(
        per_backend[b],
        static_cast<std::uint32_t>(max_results - collected.size()), 0.0);
    if (!batch.ok()) continue;
    for (auto& result : batch.value()) collected.push_back(std::move(result));
  }
  return collected;
}

Status Forwarder::destroy_instance(InstanceId instance) {
  std::vector<InstanceId> per_backend;
  {
    std::lock_guard lock(mu_);
    auto it = std::find_if(routes_.begin(), routes_.end(),
                           [&](const Route& r) { return r.composite == instance; });
    if (it == routes_.end()) {
      return make_error(ErrorCode::kNotFound, "no such forwarder instance");
    }
    per_backend = it->per_backend;
    routes_.erase(it);
  }
  Status last = ok_status();
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (auto status = backends_[b]->destroy_instance(per_backend[b]);
        !status.ok()) {
      last = status;
    }
  }
  return last;
}

Result<DispatcherStatus> Forwarder::status() {
  DispatcherStatus total;
  for (auto* backend : backends_) {
    auto status = backend->status();
    if (!status.ok()) continue;
    total.submitted += status.value().submitted;
    total.queued += status.value().queued;
    total.dispatched += status.value().dispatched;
    total.completed += status.value().completed;
    total.failed += status.value().failed;
    total.retried += status.value().retried;
    total.registered_executors += status.value().registered_executors;
    total.busy_executors += status.value().busy_executors;
    total.idle_executors += status.value().idle_executors;
  }
  return total;
}

std::vector<std::uint64_t> Forwarder::routed_counts() const {
  std::lock_guard lock(mu_);
  return routed_;
}

}  // namespace falkon::core
