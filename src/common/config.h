// Flat key=value configuration with typed accessors; parsed from strings or
// files. Used by examples and benchmark binaries to override model
// parameters without recompiling.
#pragma once

#include <map>
#include <string>

#include "common/result.h"

namespace falkon {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" lines; '#' starts a comment; blank lines ignored.
  static Result<Config> parse(const std::string& text);
  static Result<Config> load_file(const std::string& path);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace falkon
