// Thread-safe queues used by the dispatcher wait queue, the notification
// engine, and the executor work loop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/result.h"

namespace falkon {

/// Unbounded MPMC FIFO with close() semantics. After close(), pops drain the
/// remaining elements and then fail with kClosed; pushes fail immediately.
template <class T>
class BlockingQueue {
 public:
  Status push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return make_error(ErrorCode::kClosed, "queue closed");
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return ok_status();
  }

  Status push_all(std::vector<T> items) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return make_error(ErrorCode::kClosed, "queue closed");
      for (auto& item : items) items_.push_back(std::move(item));
    }
    cv_.notify_all();
    return ok_status();
  }

  /// Blocking pop; fails with kClosed once the queue is closed and drained.
  Result<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    return pop_locked();
  }

  /// Pop with a timeout; kTimeout if nothing arrives in time.
  Result<T> pop_for(double seconds) {
    std::unique_lock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds));
    if (!cv_.wait_until(lock, deadline,
                        [&] { return !items_.empty() || closed_; })) {
      return Error{ErrorCode::kTimeout, "queue pop timed out"};
    }
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Pop up to `max_items` at once (task bundling support).
  std::vector<T> pop_batch(std::size_t max_items) {
    std::lock_guard lock(mu_);
    std::vector<T> batch;
    while (!items_.empty() && batch.size() < max_items) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return batch;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  Result<T> pop_locked() {
    if (items_.empty()) return Error{ErrorCode::kClosed, "queue closed"};
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_{false};
};

}  // namespace falkon
