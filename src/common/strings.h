// Small string helpers (printf-style formatting, split/trim, byte and
// duration pretty-printers for benchmark tables).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace falkon {

/// printf-style formatting into std::string.
[[nodiscard]] std::string strf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

[[nodiscard]] std::vector<std::string> split(const std::string& text,
                                             char separator);
[[nodiscard]] std::string trim(const std::string& text);
[[nodiscard]] bool starts_with(const std::string& text,
                               const std::string& prefix);

/// "1 B", "10 KB", "1 MB", "1 GB" — used for Figure 4 axis labels.
[[nodiscard]] std::string human_bytes(std::uint64_t bytes);

/// "62.0 s", "3.2 min", "1.9 h".
[[nodiscard]] std::string human_duration(double seconds);

}  // namespace falkon
