#include "common/task.h"

namespace falkon {

const char* task_state_name(TaskState state) {
  switch (state) {
    case TaskState::kPending: return "PENDING";
    case TaskState::kQueued: return "QUEUED";
    case TaskState::kDispatched: return "DISPATCHED";
    case TaskState::kRunning: return "RUNNING";
    case TaskState::kCompleted: return "COMPLETED";
    case TaskState::kFailed: return "FAILED";
    case TaskState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

TaskSpec make_sleep_task(TaskId id, double seconds) {
  TaskSpec spec;
  spec.id = id;
  spec.executable = "sleep";
  spec.args = {std::to_string(seconds)};
  spec.estimated_runtime_s = seconds;
  spec.capture_output = false;
  return spec;
}

TaskSpec make_noop_task(TaskId id) { return make_sleep_task(id, 0.0); }

TaskSpec make_data_task(TaskId id, double compute_s, DataLocation location,
                        IoMode mode, std::uint64_t input_bytes,
                        std::uint64_t output_bytes) {
  TaskSpec spec;
  spec.id = id;
  spec.executable = "data-task";
  spec.estimated_runtime_s = compute_s;
  spec.data_location = location;
  spec.io_mode = mode;
  spec.input_bytes = input_bytes;
  spec.output_bytes = output_bytes;
  spec.capture_output = false;
  return spec;
}

}  // namespace falkon
