#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace falkon {

Result<Config> Config::parse(const std::string& text) {
  Config config;
  std::size_t line_number = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        strf("config line %zu: missing '=': %s", line_number,
                             line.c_str()));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return make_error(ErrorCode::kInvalidArgument,
                        strf("config line %zu: empty key", line_number));
    }
    config.set(key, value);
  }
  return config;
}

Result<Config> Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open config: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? value : fallback;
}

long Config::get_int(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? value : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace falkon
