// Clock abstraction.
//
// All time-dependent components (dispatcher metrics, provisioner polling,
// batch-scheduler cycles, executor idle timeouts) take a Clock& so the same
// code runs in three regimes:
//   * RealClock      — wall time, used by the TCP deployment and examples;
//   * ScaledClock    — wall time compressed by a factor, used to replay the
//                      paper's minutes-long provisioning experiments in
//                      seconds while still exercising the real threaded code;
//   * ManualClock    — explicitly advanced, used by unit tests and the
//                      discrete-event simulation driver.
//
// Time is a double in seconds since an arbitrary epoch. Double precision
// keeps the DES, the statistics layer, and the cost models in one unit
// system; at microsecond resolution it is exact for > 100 years.
#pragma once

#include <condition_variable>
#include <mutex>

namespace falkon {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds since the clock's epoch.
  [[nodiscard]] virtual double now_s() const = 0;

  /// Block the calling thread for `seconds` of *this clock's* time.
  virtual void sleep_s(double seconds) = 0;

  /// Model seconds per real second (1 for RealClock, `scale` for
  /// ScaledClock). Components waiting on OS primitives (condition
  /// variables) divide model durations by this to get real timeouts.
  [[nodiscard]] virtual double rate() const { return 1.0; }
};

/// Wall-clock time from std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  RealClock();
  [[nodiscard]] double now_s() const override;
  void sleep_s(double seconds) override;

 private:
  double epoch_;
};

/// Wall time divided by `scale`: with scale=1000, a model second lasts one
/// real millisecond. sleep_s(60) then blocks for 60 ms.
class ScaledClock final : public Clock {
 public:
  explicit ScaledClock(double scale);
  [[nodiscard]] double now_s() const override;
  void sleep_s(double seconds) override;
  [[nodiscard]] double rate() const override { return scale_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  RealClock real_;
  double scale_;
};

/// Test clock advanced explicitly. sleep_s() blocks the caller until another
/// thread advances the clock past the deadline, which lets multi-threaded
/// components be driven deterministically from a test.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start_s = 0.0);
  [[nodiscard]] double now_s() const override;
  void sleep_s(double seconds) override;

  /// Move time forward and wake sleepers whose deadlines passed.
  void advance(double seconds);
  void set(double now_s);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  double now_;
};

}  // namespace falkon
