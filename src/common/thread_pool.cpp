#include "common/thread_pool.h"

#include <utility>

namespace falkon {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

Status ThreadPool::submit(std::function<void()> job) {
  return jobs_.push(std::move(job));
}

void ThreadPool::shutdown() {
  jobs_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    auto job = jobs_.pop();
    if (!job.ok()) return;  // closed and drained
    job.value()();
  }
}

}  // namespace falkon
