#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace falkon {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::mutex g_log_mutex;

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  using namespace std::chrono;
  const double t =
      duration<double>(steady_clock::now().time_since_epoch()).count();
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%12.3f] %-5s %-12s %s\n", t, level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace falkon
