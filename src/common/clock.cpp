#include "common/clock.h"

#include <chrono>
#include <thread>

namespace falkon {
namespace {

double steady_now_s() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

}  // namespace

RealClock::RealClock() : epoch_(steady_now_s()) {}

double RealClock::now_s() const { return steady_now_s() - epoch_; }

void RealClock::sleep_s(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

ScaledClock::ScaledClock(double scale) : scale_(scale > 0 ? scale : 1.0) {}

double ScaledClock::now_s() const { return real_.now_s() * scale_; }

void ScaledClock::sleep_s(double seconds) { real_.sleep_s(seconds / scale_); }

ManualClock::ManualClock(double start_s) : now_(start_s) {}

double ManualClock::now_s() const {
  std::lock_guard lock(mu_);
  return now_;
}

void ManualClock::sleep_s(double seconds) {
  std::unique_lock lock(mu_);
  const double deadline = now_ + seconds;
  cv_.wait(lock, [&] { return now_ >= deadline; });
}

void ManualClock::advance(double seconds) {
  {
    std::lock_guard lock(mu_);
    now_ += seconds;
  }
  cv_.notify_all();
}

void ManualClock::set(double now_s) {
  {
    std::lock_guard lock(mu_);
    if (now_s > now_) now_ = now_s;
  }
  cv_.notify_all();
}

}  // namespace falkon
