// Leveled logger. Default level is WARN so tests and benchmarks stay quiet;
// examples raise it to INFO.
#pragma once

#include <atomic>
#include <string>

#include "common/strings.h"

namespace falkon {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  void log(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
};

#define FALKON_LOG(level, component, ...)                                  \
  do {                                                                     \
    if (::falkon::Logger::instance().enabled(level)) {                     \
      ::falkon::Logger::instance().log(level, component,                   \
                                       ::falkon::strf(__VA_ARGS__));       \
    }                                                                      \
  } while (0)

#define LOG_DEBUG(component, ...) FALKON_LOG(::falkon::LogLevel::kDebug, component, __VA_ARGS__)
#define LOG_INFO(component, ...) FALKON_LOG(::falkon::LogLevel::kInfo, component, __VA_ARGS__)
#define LOG_WARN(component, ...) FALKON_LOG(::falkon::LogLevel::kWarn, component, __VA_ARGS__)
#define LOG_ERROR(component, ...) FALKON_LOG(::falkon::LogLevel::kError, component, __VA_ARGS__)

}  // namespace falkon
