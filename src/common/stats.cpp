#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace falkon {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::add(double x) {
  moments_.add(x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / bin_width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_[bin]; }

double Histogram::bin_lower(std::size_t bin) const {
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::quantile(double q) const {
  const auto total = moments_.count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lower(i) + frac * bin_width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0 && underflow_ == 0 && overflow_ == 0) {
    return "(empty histogram)\n";
  }
  std::string out;
  char line[160];
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "%12s | %-*s %zu\n", "(underflow)",
                  static_cast<int>(width), "", underflow_);
    out += line;
  }
  if (peak == 0) {
    if (overflow_ > 0) {
      std::snprintf(line, sizeof(line), "%12s | %-*s %zu\n", "(overflow)",
                    static_cast<int>(width), "", overflow_);
      out += line;
    }
    return out;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof(line), "%12.3f | %-*s %zu\n", bin_lower(i),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[i]);
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "%12s | %-*s %zu\n", "(overflow)",
                  static_cast<int>(width), "", overflow_);
    out += line;
  }
  return out;
}

MovingAverage::MovingAverage(std::size_t window)
    : window_(window == 0 ? 1 : window, 0.0) {}

void MovingAverage::add(double x) {
  if (filled_ == window_.size()) {
    sum_ -= window_[next_];
  } else {
    ++filled_;
  }
  window_[next_] = x;
  sum_ += x;
  next_ = (next_ + 1) % window_.size();
}

double MovingAverage::value() const {
  if (filled_ == 0) return 0.0;
  return sum_ / static_cast<double>(filled_);
}

void TimeSeries::add(double t, double value) {
  // Keep the series time-sorted; out-of-order inserts are a logic error in
  // callers but tolerated by clamping to the series end.
  if (!points_.empty() && t < points_.back().t) t = points_.back().t;
  points_.push_back({t, value});
}

double TimeSeries::last_time() const {
  return points_.empty() ? 0.0 : points_.back().t;
}

double TimeSeries::last_value() const {
  return points_.empty() ? 0.0 : points_.back().v;
}

double TimeSeries::sample(double t, double fallback) const {
  if (points_.empty() || t < points_.front().t) return fallback;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const Point& p) { return lhs < p.t; });
  return std::prev(it)->v;
}

std::vector<std::pair<double, double>> TimeSeries::resample(double t0,
                                                            double t1,
                                                            double step) const {
  std::vector<std::pair<double, double>> grid;
  if (step <= 0) return grid;
  for (double t = t0; t <= t1 + step * 0.5; t += step) {
    grid.emplace_back(t, sample(t));
  }
  return grid;
}

double TimeSeries::integrate(double t0, double t1) const {
  if (points_.empty() || t1 <= t0) return 0.0;
  double total = 0.0;
  double prev_t = t0;
  double prev_v = sample(t0);
  for (const auto& p : points_) {
    if (p.t <= t0) continue;
    if (p.t >= t1) break;
    total += prev_v * (p.t - prev_t);
    prev_t = p.t;
    prev_v = p.v;
  }
  total += prev_v * (t1 - prev_t);
  return total;
}

ThroughputSampler::ThroughputSampler(double interval_s)
    : interval_s_(interval_s > 0 ? interval_s : 1.0) {}

void ThroughputSampler::record(double t) {
  if (t < 0) t = 0;
  const auto slot = static_cast<std::size_t>(t / interval_s_);
  if (slot >= samples_.size()) samples_.resize(slot + 1, 0);
  ++samples_[slot];
}

std::vector<double> ThroughputSampler::moving_average(
    std::size_t window) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  MovingAverage ma(window);
  for (auto s : samples_) {
    ma.add(static_cast<double>(s) / interval_s_);
    out.push_back(ma.value());
  }
  return out;
}

}  // namespace falkon
