#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace falkon {

std::string strf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string human_bytes(std::uint64_t bytes) {
  if (bytes >= 1ULL << 30) return strf("%.3g GB", static_cast<double>(bytes) / (1ULL << 30));
  if (bytes >= 1ULL << 20) return strf("%.3g MB", static_cast<double>(bytes) / (1ULL << 20));
  if (bytes >= 1ULL << 10) return strf("%.3g KB", static_cast<double>(bytes) / (1ULL << 10));
  return strf("%llu B", static_cast<unsigned long long>(bytes));
}

std::string human_duration(double seconds) {
  if (seconds >= 3600.0) return strf("%.2f h", seconds / 3600.0);
  if (seconds >= 120.0) return strf("%.1f min", seconds / 60.0);
  return strf("%.2f s", seconds);
}

}  // namespace falkon
