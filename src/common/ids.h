// Strongly-typed identifiers used across the Falkon framework.
//
// Every entity in the system (task, executor, client instance, node, batch
// job, allocation request) carries its own id type so that ids cannot be
// accidentally mixed: passing a TaskId where an ExecutorId is expected is a
// compile error.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace falkon {

/// Generic strongly-typed 64-bit identifier. `Tag` is a phantom type.
template <class Tag>
struct Id {
  std::uint64_t value{0};

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != 0; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }

  [[nodiscard]] std::string str() const { return std::to_string(value); }
};

struct TaskTag {};
struct ExecutorTag {};
struct ClientTag {};
struct InstanceTag {};
struct NodeTag {};
struct JobTag {};
struct AllocationTag {};
struct RequestTag {};

using TaskId = Id<TaskTag>;
using ExecutorId = Id<ExecutorTag>;
using ClientId = Id<ClientTag>;
/// A dispatcher "instance" in the factory/instance pattern (the EPR the
/// client receives from create-instance, paper section 3.2).
using InstanceId = Id<InstanceTag>;
using NodeId = Id<NodeTag>;
using JobId = Id<JobTag>;
using AllocationId = Id<AllocationTag>;
using RequestId = Id<RequestTag>;

/// Monotonic id generator; thread-compatible (callers synchronise).
template <class IdType>
class IdGenerator {
 public:
  IdType next() { return IdType{++last_}; }

  /// Restore the high-water mark (recovery: a restarted dispatcher must
  /// never re-issue an id already present in its journal). Only moves
  /// forward.
  void reset(std::uint64_t last) {
    if (last > last_) last_ = last;
  }

 private:
  std::uint64_t last_{0};
};

}  // namespace falkon

namespace std {
template <class Tag>
struct hash<falkon::Id<Tag>> {
  size_t operator()(falkon::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
