// Task model: specification, status, and result.
//
// Mirrors the Falkon client "submit" payload (paper section 3.2): each task
// carries a working directory, command, arguments and environment, and the
// result carries the exit code plus optional STDOUT/STDERR contents.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"

namespace falkon {

/// Where a task's data lives; consumed by the I/O model and the data-aware
/// dispatch policy (paper sections 4.2 and 6).
enum class DataLocation : std::uint8_t {
  kNone = 0,    // task touches no data
  kSharedFs,    // GPFS-like shared file system
  kLocalDisk,   // local disk of the compute node
};

enum class IoMode : std::uint8_t {
  kNone = 0,
  kRead,       // task reads `input_bytes`
  kReadWrite,  // task reads `input_bytes` and writes `output_bytes`
};

struct TaskSpec {
  TaskId id;
  std::string executable;              // command to execute
  std::vector<std::string> args;       // command arguments
  std::string working_dir;
  std::map<std::string, std::string> env;

  /// Estimated runtime in seconds; used by dispatcher-executor bundling
  /// balancing and by the simulation substrates. Zero means unknown.
  double estimated_runtime_s{0.0};

  // Data staging description (section 4.2 experiments).
  DataLocation data_location{DataLocation::kNone};
  IoMode io_mode{IoMode::kNone};
  std::uint64_t input_bytes{0};
  std::uint64_t output_bytes{0};

  /// Logical name of the primary input object, for data-aware scheduling
  /// and executor-side caching (section 6 future work).
  std::string data_object;

  /// Whether the client wants STDOUT/STDERR contents returned.
  bool capture_output{true};

  // Data-diffusion routing stamp (docs/DATA.md). Set by the dispatcher when
  // the locality policy routed this task onto an executor it believes holds
  // `data_object`; `data_source` names a "host:port" alternate holder the
  // executor may fetch from peer-to-peer if its own cache misses.
  bool expect_cached{false};
  std::string data_source;
};

enum class TaskState : std::uint8_t {
  kPending = 0,   // known to client, not yet submitted
  kQueued,        // in the dispatcher wait queue
  kDispatched,    // sent to an executor, not yet started
  kRunning,       // executing on an executor
  kCompleted,     // finished with exit code 0
  kFailed,        // finished with non-zero exit code or engine failure
  kCancelled,
};

[[nodiscard]] const char* task_state_name(TaskState state);

struct TaskResult {
  TaskId task_id;
  ExecutorId executor_id;
  int exit_code{0};
  TaskState state{TaskState::kCompleted};
  std::string stdout_data;
  std::string stderr_data;

  // Timing breakdown, seconds on the executing side's clock.
  double queue_time_s{0.0};    // submit -> dispatch
  double exec_time_s{0.0};     // start -> finish on executor
  double overhead_s{0.0};      // total round-trip minus exec time

  [[nodiscard]] bool success() const {
    return state == TaskState::kCompleted && exit_code == 0;
  }
};

/// Convenience builders for the synthetic workloads used throughout the
/// evaluation.
[[nodiscard]] TaskSpec make_sleep_task(TaskId id, double seconds);
[[nodiscard]] TaskSpec make_noop_task(TaskId id);
[[nodiscard]] TaskSpec make_data_task(TaskId id, double compute_s,
                                      DataLocation location, IoMode mode,
                                      std::uint64_t input_bytes,
                                      std::uint64_t output_bytes);

}  // namespace falkon
