// Deterministic random-number utilities.
//
// Simulations and workload generators must be reproducible under a seed, so
// everything takes an explicit Rng rather than using global state.
#pragma once

#include <cmath>
#include <cstdint>

namespace falkon {

/// SplitMix64: tiny, fast, good-enough statistical quality for workload
/// generation and jitter models; fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    return lo + next_u64() % (hi - lo + 1);
  }

  /// Exponential with the given mean (inter-arrival models).
  double exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 1e-300;
    return -mean * std::log(u);
  }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace falkon
