// Statistics utilities used by the benchmark harnesses and by the
// dispatcher's self-metrics: streaming accumulators, histograms, windowed
// moving averages (Figure 8 plots a 60-sample moving average of raw
// throughput), and time series for the provisioning traces (Figures 12/13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace falkon {

/// Streaming mean/variance/min/max via Welford's algorithm.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples are
/// counted in explicit underflow (x < lo) / overflow (x >= hi) bins rather
/// than silently distorting the edge buckets; they still contribute to the
/// moments() Accumulator and to quantile mass.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] const Accumulator& moments() const { return moments_; }

  /// Approximate quantile (0..1) by linear interpolation within a bin.
  /// Quantiles that fall into the underflow (overflow) mass resolve to the
  /// lo (hi) range bound.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  Accumulator moments_;
};

/// Moving average over a fixed window of samples.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double x);
  [[nodiscard]] double value() const;
  [[nodiscard]] bool full() const { return filled_ == window_.size(); }

 private:
  std::vector<double> window_;
  std::size_t next_{0};
  std::size_t filled_{0};
  double sum_{0.0};
};

/// (time, value) series with fixed-interval resampling for plots/tables.
class TimeSeries {
 public:
  void add(double t, double value);
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double time_at(std::size_t i) const { return points_[i].t; }
  [[nodiscard]] double value_at(std::size_t i) const { return points_[i].v; }
  [[nodiscard]] double last_time() const;
  [[nodiscard]] double last_value() const;

  /// Step-function value at time t (last point with time <= t), or
  /// `fallback` before the first point.
  [[nodiscard]] double sample(double t, double fallback = 0.0) const;

  /// Resample onto a regular grid [t0, t1] with the given step.
  [[nodiscard]] std::vector<std::pair<double, double>> resample(
      double t0, double t1, double step) const;

  /// Time integral of the step function between t0 and t1 (used for
  /// resource-seconds accounting in Table 4).
  [[nodiscard]] double integrate(double t0, double t1) const;

 private:
  struct Point {
    double t;
    double v;
  };
  std::vector<Point> points_;
};

/// Counts completions per fixed interval; yields raw throughput samples and
/// their moving average, as plotted in Figure 8.
class ThroughputSampler {
 public:
  explicit ThroughputSampler(double interval_s = 1.0);

  void record(double t);  // one completion at time t
  [[nodiscard]] const std::vector<std::size_t>& samples() const {
    return samples_;
  }
  [[nodiscard]] double interval() const { return interval_s_; }
  [[nodiscard]] std::vector<double> moving_average(std::size_t window) const;

 private:
  double interval_s_;
  std::vector<std::size_t> samples_;
};

}  // namespace falkon
