// Fixed-size thread pool.
//
// Used by the dispatcher's notification engine (paper section 3.2: "a pool
// of threads operate to send out notifications") and by the RPC server for
// handling concurrent connections.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace falkon {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job; fails with kClosed after shutdown() was called.
  Status submit(std::function<void()> job);

  /// Stop accepting jobs, run what is queued, join all workers. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  [[nodiscard]] std::size_t pending() const { return jobs_.size(); }

 private:
  void worker_loop();

  BlockingQueue<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  std::string name_;
};

}  // namespace falkon
