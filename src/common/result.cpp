#include "common/result.h"

namespace falkon {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kClosed: return "CLOSED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kCapacity: return "CAPACITY";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace falkon
