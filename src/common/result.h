// Minimal expected-like Result type and error taxonomy.
//
// The framework reports recoverable failures (network errors, protocol
// violations, queue shutdown, LRM rejections) through Result<T> rather than
// exceptions, so that every call site is forced to consider the failure
// path. Exceptions are reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace falkon {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kClosed,          // queue / connection / service shut down
  kTimeout,
  kIoError,         // socket or file failure
  kProtocolError,   // malformed or unexpected message
  kCapacity,        // resource limits exceeded
  kUnavailable,     // transient: retry may succeed
  kCancelled,
  kInternal,
};

[[nodiscard]] const char* error_code_name(ErrorCode code);

struct Error {
  ErrorCode code{ErrorCode::kInternal};
  std::string message;

  [[nodiscard]] std::string str() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

/// Result<T>: either a value or an Error. Result<void> holds only status.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& take() {
    assert(ok());
    return std::move(*value_);
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

using Status = Result<void>;

inline Status ok_status() { return {}; }

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace falkon
