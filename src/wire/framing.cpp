#include "wire/framing.h"

#include <cstring>

#include "common/strings.h"

namespace falkon::wire {

void put_frame_header(std::uint8_t* out, std::uint64_t corr,
                      std::uint32_t length) {
  std::memcpy(out, &length, 4);
  std::memcpy(out + 4, &corr, 8);
}

Status write_frame(ByteStream& stream,
                   const std::vector<std::uint8_t>& payload) {
  return write_frame(stream, 0, payload);
}

Status write_frame(ByteStream& stream, std::uint64_t corr,
                   const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return make_error(ErrorCode::kInvalidArgument,
                      strf("frame too large: %zu bytes", payload.size()));
  }
  std::uint8_t header[kFrameHeaderBytes];
  put_frame_header(header, corr, static_cast<std::uint32_t>(payload.size()));
  ByteStream::ConstBuf bufs[2] = {
      {header, kFrameHeaderBytes},
      {payload.data(), payload.size()},
  };
  return stream.write_gather(bufs, payload.empty() ? 1 : 2);
}

Status write_frames(ByteStream& stream, const PendingFrame* frames,
                    std::size_t count,
                    std::vector<std::uint8_t>& header_scratch) {
  if (count == 0) return ok_status();
  header_scratch.resize(count * kFrameHeaderBytes);
  std::vector<ByteStream::ConstBuf> bufs;
  bufs.reserve(count * 2);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& frame = frames[i];
    if (frame.payload.size() > kMaxFrameBytes) {
      return make_error(ErrorCode::kInvalidArgument,
                        strf("frame too large: %zu bytes",
                             frame.payload.size()));
    }
    std::uint8_t* header = header_scratch.data() + i * kFrameHeaderBytes;
    put_frame_header(header, frame.corr,
                     static_cast<std::uint32_t>(frame.payload.size()));
    bufs.push_back({header, kFrameHeaderBytes});
    if (!frame.payload.empty()) {
      bufs.push_back({frame.payload.data(), frame.payload.size()});
    }
  }
  return stream.write_gather(bufs.data(), bufs.size());
}

Result<std::vector<std::uint8_t>> read_frame(ByteStream& stream) {
  Frame frame;
  if (auto status = read_frame(stream, frame); !status.ok()) {
    return status.error();
  }
  return std::move(frame.payload);
}

Status read_frame(ByteStream& stream, Frame& frame) {
  std::uint8_t header[kFrameHeaderBytes];
  if (auto status = stream.read_exact(header, 4); !status.ok()) {
    return status;
  }
  std::uint32_t length;
  std::memcpy(&length, header, 4);
  if (length > kMaxFrameBytes) {
    return make_error(ErrorCode::kProtocolError,
                      strf("frame length %u exceeds limit", length));
  }
  if (auto status = stream.read_exact(header + 4, 8); !status.ok()) {
    if (status.error().code == ErrorCode::kClosed) {
      return make_error(ErrorCode::kProtocolError,
                        "truncated frame: stream ended inside the header");
    }
    return status;
  }
  std::memcpy(&frame.corr, header + 4, 8);
  frame.payload.resize(length);
  if (length > 0) {
    if (auto status = stream.read_exact(frame.payload.data(), length);
        !status.ok()) {
      if (status.error().code == ErrorCode::kClosed) {
        // EOF after the header promised `length` payload bytes: the frame
        // was truncated. Distinct from a clean close at a frame boundary.
        return make_error(ErrorCode::kProtocolError,
                          strf("truncated frame: expected %u payload bytes",
                               length));
      }
      return status;
    }
  }
  return ok_status();
}

}  // namespace falkon::wire
