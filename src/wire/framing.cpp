#include "wire/framing.h"

#include <cstring>

#include "common/strings.h"

namespace falkon::wire {

Status write_frame(ByteStream& stream,
                   const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return make_error(ErrorCode::kInvalidArgument,
                      strf("frame too large: %zu bytes", payload.size()));
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::uint8_t header[4];
  std::memcpy(header, &length, 4);
  if (auto status = stream.write_all(header, 4); !status.ok()) return status;
  if (payload.empty()) return ok_status();
  return stream.write_all(payload.data(), payload.size());
}

Result<std::vector<std::uint8_t>> read_frame(ByteStream& stream) {
  std::uint8_t header[4];
  if (auto status = stream.read_exact(header, 4); !status.ok()) {
    return status.error();
  }
  std::uint32_t length;
  std::memcpy(&length, header, 4);
  if (length > kMaxFrameBytes) {
    return make_error(ErrorCode::kProtocolError,
                      strf("frame length %u exceeds limit", length));
  }
  std::vector<std::uint8_t> payload(length);
  if (length > 0) {
    if (auto status = stream.read_exact(payload.data(), length); !status.ok()) {
      if (status.error().code == ErrorCode::kClosed) {
        // EOF after the header promised `length` payload bytes: the frame
        // was truncated. Distinct from a clean close at a frame boundary.
        return make_error(ErrorCode::kProtocolError,
                          strf("truncated frame: expected %u payload bytes",
                               length));
      }
      return status.error();
    }
  }
  return payload;
}

}  // namespace falkon::wire
