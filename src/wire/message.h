// Falkon protocol messages.
//
// One message type per arrow in paper Figure 2:
//   client <-> dispatcher : create/destroy instance, submit {1,2},
//                           wait-results {9,10}, client notification {8}
//   dispatcher -> executor: notify {3} (push channel)
//   executor <-> dispatcher: register, get-work {4,5}, deliver-result {6},
//                           ack + piggy-backed next tasks {7}
//   provisioner <-> dispatcher: status poll {POLL}
//
// Bundling (section 3.4) is structural: SubmitRequest, GetWorkReply,
// ResultRequest and ResultReply all carry arrays.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/task.h"
#include "wire/codec.h"

namespace falkon::wire {

enum class MsgType : std::uint8_t {
  kError = 0,
  kCreateInstanceRequest = 1,
  kCreateInstanceReply = 2,
  kDestroyInstanceRequest = 3,
  kDestroyInstanceReply = 4,
  kSubmitRequest = 5,
  kSubmitReply = 6,
  kRegisterRequest = 7,
  kRegisterReply = 8,
  kNotify = 9,
  kGetWorkRequest = 10,
  kGetWorkReply = 11,
  kResultRequest = 12,
  kResultReply = 13,
  kStatusRequest = 14,
  kStatusReply = 15,
  kDeregisterRequest = 16,
  kDeregisterReply = 17,
  kWaitResultsRequest = 18,
  kWaitResultsReply = 19,
  kClientNotify = 20,
  kHeartbeatRequest = 21,
  kHeartbeatReply = 22,
  kTaskBundle = 23,
  kResultBundle = 24,
  kReplFetch = 25,
  kReplAppend = 26,
  kReplSnapshot = 27,
  kReplAck = 28,
  kReplAckReply = 29,
  kElectionPing = 30,
  kElectionAck = 31,
  kCacheDigest = 32,
  kDataFetch = 33,
  kDataFetchReply = 34,
  kDataEvict = 35,
  kSubscribeResults = 36,
  kResultStream = 37,
};

[[nodiscard]] const char* msg_type_name(MsgType type);

// ---- message structs -------------------------------------------------

struct ErrorReply {
  ErrorCode code{ErrorCode::kInternal};
  std::string message;
};

struct CreateInstanceRequest {
  ClientId client_id;
};

/// The "EPR" returned by the dispatcher factory (section 3.2).
struct CreateInstanceReply {
  InstanceId instance_id;
};

struct DestroyInstanceRequest {
  InstanceId instance_id;
};

struct DestroyInstanceReply {};

struct SubmitRequest {
  InstanceId instance_id;
  std::vector<TaskSpec> tasks;  // client-dispatcher bundling
  /// Per-instance, strictly increasing submit sequence for exactly-once
  /// submission across dispatcher failover (docs/HA.md); 0 = dedup unused.
  std::uint64_t submit_seq{0};
  /// Dispatcher epoch the client believes it is talking to; a promoted
  /// dispatcher rejects submits stamped with an older epoch (fencing,
  /// docs/HA.md). 0 = unfenced legacy client, always accepted.
  std::uint64_t epoch{0};
};

struct SubmitReply {
  std::uint64_t accepted{0};
  /// Current dispatcher epoch — how clients learn the epoch after failover.
  std::uint64_t epoch{0};
};

struct RegisterRequest {
  NodeId node_id;
  std::string host;           // where the executor runs
  std::uint32_t slots{1};     // concurrent tasks the executor can run
  AllocationId allocation_id; // LRM allocation that created this executor
  /// Data-plane piggyback (docs/DATA.md): port of the executor's peer
  /// fetch server (0 = no data plane) and the initial cache digest —
  /// usually empty, but a restarted executor re-advertises a warm cache.
  std::uint32_t data_port{0};
  std::vector<std::string> cached;
};

struct RegisterReply {
  ExecutorId executor_id;
  /// Current dispatcher epoch — executors learn it on (re-)registration.
  std::uint64_t epoch{0};
};

/// Sentinel resource key in a Notify that asks the executor to release
/// itself (centralized resource-release policy) instead of fetching work.
inline constexpr std::uint64_t kReleaseResourceKey = ~0ULL;

/// Push notification ({3}): "work is available under this resource key".
struct Notify {
  ExecutorId executor_id;
  std::uint64_t resource_key{0};
};

struct GetWorkRequest {
  ExecutorId executor_id;
  std::uint32_t max_tasks{1};
};

struct GetWorkReply {
  std::vector<TaskSpec> tasks;
};

struct ResultRequest {
  ExecutorId executor_id;
  std::vector<TaskResult> results;
  /// Pre-fetch hint: executor wants this many new tasks piggy-backed on
  /// the acknowledgement (0 disables piggy-backing).
  std::uint32_t want_tasks{0};
};

struct ResultReply {
  std::uint64_t acknowledged{0};
  std::vector<TaskSpec> piggyback_tasks;  // section 3.4 optimisation
};

struct StatusRequest {};

/// Dispatcher state snapshot consumed by the provisioner {POLL}.
struct StatusReply {
  std::uint64_t submitted_tasks{0};
  std::uint64_t queued_tasks{0};
  std::uint64_t dispatched_tasks{0};
  std::uint64_t completed_tasks{0};
  std::uint64_t failed_tasks{0};
  std::uint64_t retried_tasks{0};
  std::uint64_t suspicions{0};
  std::uint64_t false_suspicions{0};
  std::uint64_t quarantined_tasks{0};
  std::uint32_t registered_executors{0};
  std::uint32_t busy_executors{0};
  std::uint32_t idle_executors{0};
  /// Current dispatcher epoch (0 on pre-HA dispatchers).
  std::uint64_t epoch{0};
};

struct DeregisterRequest {
  ExecutorId executor_id;
  std::string reason;
};

struct DeregisterReply {};

struct WaitResultsRequest {
  InstanceId instance_id;
  std::uint32_t max_results{64};
  double timeout_s{1.0};
};

struct WaitResultsReply {
  std::vector<TaskResult> results;
};

/// Dispatcher -> client notification {8}: results are ready for pick-up.
struct ClientNotify {
  InstanceId instance_id;
  std::uint64_t completed{0};
};

/// Executor liveness beacon on the control channel; the dispatcher's
/// failure detector deregisters executors whose beacons stop.
struct HeartbeatRequest {
  ExecutorId executor_id;
  /// Cache-digest piggyback (docs/DATA.md): when `has_digest` the beacon
  /// re-advertises the executor's full cache contents under `generation`
  /// (bumped on every insert/evict). The dispatcher replaces its mirror
  /// wholesale; a heartbeat without a digest just proves liveness.
  std::uint64_t digest_generation{0};
  std::uint32_t data_port{0};
  bool has_digest{false};
  std::vector<std::string> cached;
};

struct HeartbeatReply {};

/// GetWorkRequest.max_tasks / TaskBundle request sentinel: let the
/// dispatcher size the bundle adaptively from current queue depth (still
/// capped by max_bundle_runtime_s and DispatcherConfig::max_adaptive_bundle).
inline constexpr std::uint32_t kAdaptiveBundle = 0;

/// want_tasks sentinel asking for adaptively-sized piggyback instead of a
/// fixed count (0 keeps its existing meaning: no piggyback).
inline constexpr std::uint32_t kAdaptiveWant = 0xffffffffu;

/// N tasks in one frame (paper §3.4 / Fig. 5 bundling at the wire layer).
/// Sent dispatcher -> executor as the reply to a ResultBundle. `bundle_seq`
/// numbers non-empty bundles so the executor can acknowledge a whole batch
/// with one `ack_seq` instead of per-task acks.
struct TaskBundle {
  ExecutorId executor_id;
  std::uint64_t bundle_seq{0};
  std::uint64_t acknowledged{0};
  std::vector<TaskSpec> tasks;
};

/// Executor -> dispatcher: deliver N results and ask for the next bundle in
/// the same exchange. `ack_seq` echoes the highest TaskBundle.bundle_seq
/// received so far (batched acknowledgement).
struct ResultBundle {
  ExecutorId executor_id;
  std::uint64_t ack_seq{0};
  std::vector<TaskResult> results;
  std::uint32_t want_tasks{0};
};

// ---- log replication (docs/HA.md) ------------------------------------

/// Standby -> primary: send log records starting at `from_lsn`. Doubles as
/// a cumulative acknowledgement of everything below `from_lsn`. `epoch` is
/// the highest epoch the follower has applied; a source at a higher epoch
/// still serves the fetch (the records carry the epoch bump), but a source
/// at a LOWER epoch must refuse — it is the zombie.
struct ReplFetch {
  std::uint64_t from_lsn{1};
  std::uint32_t max_bytes{1u << 20};
  std::uint64_t epoch{0};
};

/// Primary -> standby: a run of WAL-framed records [first_lsn, last_lsn]
/// (the payload uses the same [len][crc32][payload] framing as log
/// segments, so both sides share one codec). Empty payload with
/// last_lsn < from_lsn's predecessor never occurs; an empty payload means
/// "caught up".
struct ReplAppend {
  std::uint64_t first_lsn{0};
  std::uint64_t last_lsn{0};
  std::string payload;
  /// Source's current epoch; followers drop batches from a stale epoch.
  std::uint64_t epoch{0};
};

/// Primary -> standby: the follower fell behind the primary's in-memory
/// tail — here is a full state image at `lsn`; resume fetching at lsn + 1.
struct ReplSnapshot {
  std::uint64_t lsn{0};
  std::string payload;
  /// Source's current epoch; followers drop snapshots from a stale epoch.
  std::uint64_t epoch{0};
};

/// Standby -> primary: explicit progress report, drives the primary's
/// replication-lag gauge (falkon.ha.repl.lag).
struct ReplAck {
  std::uint64_t applied_lsn{0};
  std::uint64_t epoch{0};
};

struct ReplAckReply {};

// ---- standby lease election (docs/HA.md) -----------------------------

/// Standby -> standby: "the primary looks dead to me — are you alive, and
/// who should promote?". Sent to every configured peer when the failover
/// timer expires; the sender promotes only if no live peer outranks it
/// (lower rank wins) and none has already promoted.
struct ElectionPing {
  std::uint64_t epoch{0};        // sender's highest applied epoch
  std::uint32_t rank{0};         // sender's configured rank
  std::uint64_t applied_lsn{0};  // sender's replication progress
};

/// Election answer: receiver's identity and progress. `promoted` short-
/// circuits the election — the sender adopts the existing winner.
struct ElectionAck {
  std::uint64_t epoch{0};
  std::uint32_t rank{0};
  std::uint64_t applied_lsn{0};
  bool promoted{false};
};

// ---- data diffusion (docs/DATA.md) -----------------------------------

/// Executor -> dispatcher: standalone full cache-content advertisement.
/// The common path piggybacks the digest on RegisterRequest/
/// HeartbeatRequest; this message exists for out-of-band refreshes (e.g. a
/// data plane that churned many objects between beacons). `generation`
/// orders advertisements: the dispatcher drops digests older than the one
/// it mirrors.
struct CacheDigest {
  ExecutorId executor_id;
  std::uint64_t generation{0};
  /// Peer fetch port of the executor's data server (0 = no data plane).
  std::uint32_t data_port{0};
  std::vector<std::string> objects;
};

/// Executor -> executor (peer data plane): send me this object.
struct DataFetch {
  std::string object;
};

/// Peer data plane reply: the object's payload. `object_bytes` is the
/// modeled size for cache accounting (the wire payload is a bounded
/// synthetic blob); `crc` is crc32(payload) and is verified at decode —
/// a mismatch is a CodecError, surfaced as kProtocolError like any other
/// malformed frame. Build replies with make_data_fetch_reply() so the
/// stamp is always correct.
struct DataFetchReply {
  std::string object;
  std::uint64_t object_bytes{0};
  std::string payload;
  std::uint32_t crc{0};
};

/// Executor -> dispatcher: incremental digest retraction — the LRU evicted
/// `object`, stop routing tasks that need it here.
struct DataEvict {
  ExecutorId executor_id;
  std::string object;
};

// ---- push-mode result streaming (docs/PROTOCOL.md) -------------------

/// Client -> dispatcher (RPC): enter push-mode result streaming for an
/// instance already subscribed on the notification channel, or acknowledge
/// streamed results. `ack_seq = 0` (re)subscribes — the dispatcher resets
/// its streaming cursor and re-pushes the whole mailbox backlog (the client
/// dedups by task id, so re-delivery is safe). `ack_seq > 0` is a
/// cumulative acknowledgement of every ResultStream frame with
/// `seq <= ack_seq`; acknowledged results are removed from the mailbox and
/// journaled as delivered (docs/HA.md). The reply is a ResultStream frame
/// whose `seq` reports the dispatcher's current push cursor (empty result
/// array — actual batches flow on the push channel).
struct SubscribeResults {
  InstanceId instance_id;
  std::uint64_t ack_seq{0};
};

/// Dispatcher -> client (push channel): a drained mailbox batch. `seq` is
/// the cumulative count of results streamed to this instance since the last
/// subscribe — the client echoes the highest seen value back as
/// `SubscribeResults.ack_seq`. Streamed results stay in the mailbox until
/// acknowledged, so a dropped frame costs re-delivery, never loss.
struct ResultStream {
  InstanceId instance_id;
  std::uint64_t seq{0};
  std::vector<TaskResult> results;
};

/// CRC-32 (IEEE, reflected) over a byte range; stamps DataFetchReply
/// payloads. Local to the wire layer on purpose — ha's WAL checksum lives
/// above wire in the layering and cannot be shared downward.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

/// Build a DataFetchReply with a correct crc stamp.
[[nodiscard]] DataFetchReply make_data_fetch_reply(std::string object,
                                                   std::uint64_t object_bytes,
                                                   std::string payload);

// NOTE: MsgType values equal variant indices (message_type() casts the
// index) — new messages must be appended at the end of BOTH lists.
using Message =
    std::variant<ErrorReply, CreateInstanceRequest, CreateInstanceReply,
                 DestroyInstanceRequest, DestroyInstanceReply, SubmitRequest,
                 SubmitReply, RegisterRequest, RegisterReply, Notify,
                 GetWorkRequest, GetWorkReply, ResultRequest, ResultReply,
                 StatusRequest, StatusReply, DeregisterRequest,
                 DeregisterReply, WaitResultsRequest, WaitResultsReply,
                 ClientNotify, HeartbeatRequest, HeartbeatReply, TaskBundle,
                 ResultBundle, ReplFetch, ReplAppend, ReplSnapshot, ReplAck,
                 ReplAckReply, ElectionPing, ElectionAck, CacheDigest,
                 DataFetch, DataFetchReply, DataEvict, SubscribeResults,
                 ResultStream>;

[[nodiscard]] MsgType message_type(const Message& message);

/// One-line human-readable summary ("TaskBundle{seq=3, acked=2, tasks=8}")
/// for counterexample dumps, trace logs and test failure messages. Payload
/// bodies (task args, result stdout) are elided — only the protocol-level
/// fields that matter for conformance debugging are shown.
[[nodiscard]] std::string debug_summary(const Message& message);

/// Serialise a message (type byte + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& message);

/// Serialise into a caller-owned Writer (cleared first). A thread-local
/// Writer reused across calls keeps the hot encode path allocation-free
/// once its buffer has grown to the largest message seen.
void encode_message_into(Writer& writer, const Message& message);

/// Decode; kProtocolError on malformed input.
[[nodiscard]] Result<Message> decode_message(const std::uint8_t* data,
                                             std::size_t size);
[[nodiscard]] Result<Message> decode_message(
    const std::vector<std::uint8_t>& buffer);

// TaskSpec/TaskResult encoders are exposed for tests and for the sim's
// message-size accounting.
void encode_task_spec(Writer& writer, const TaskSpec& spec);
[[nodiscard]] TaskSpec decode_task_spec(Reader& reader);
void encode_task_result(Writer& writer, const TaskResult& result);
[[nodiscard]] TaskResult decode_task_result(Reader& reader);

}  // namespace falkon::wire
