#include "wire/message.h"

#include <array>
#include <type_traits>

namespace falkon::wire {
namespace {

void encode_string_vector(Writer& w, const std::vector<std::string>& v) {
  w.put_varint(v.size());
  for (const auto& s : v) w.put_string(s);
}

std::vector<std::string> decode_string_vector(Reader& r) {
  const auto n = r.get_varint();
  if (n > r.remaining()) throw CodecError("vector length exceeds buffer");
  std::vector<std::string> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.get_string());
  return v;
}

void encode_env(Writer& w, const std::map<std::string, std::string>& env) {
  w.put_varint(env.size());
  for (const auto& [key, value] : env) {
    w.put_string(key);
    w.put_string(value);
  }
}

std::map<std::string, std::string> decode_env(Reader& r) {
  const auto n = r.get_varint();
  if (n > r.remaining()) throw CodecError("map length exceeds buffer");
  std::map<std::string, std::string> env;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    env[std::move(key)] = r.get_string();
  }
  return env;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kError: return "Error";
    case MsgType::kCreateInstanceRequest: return "CreateInstanceRequest";
    case MsgType::kCreateInstanceReply: return "CreateInstanceReply";
    case MsgType::kDestroyInstanceRequest: return "DestroyInstanceRequest";
    case MsgType::kDestroyInstanceReply: return "DestroyInstanceReply";
    case MsgType::kSubmitRequest: return "SubmitRequest";
    case MsgType::kSubmitReply: return "SubmitReply";
    case MsgType::kRegisterRequest: return "RegisterRequest";
    case MsgType::kRegisterReply: return "RegisterReply";
    case MsgType::kNotify: return "Notify";
    case MsgType::kGetWorkRequest: return "GetWorkRequest";
    case MsgType::kGetWorkReply: return "GetWorkReply";
    case MsgType::kResultRequest: return "ResultRequest";
    case MsgType::kResultReply: return "ResultReply";
    case MsgType::kStatusRequest: return "StatusRequest";
    case MsgType::kStatusReply: return "StatusReply";
    case MsgType::kDeregisterRequest: return "DeregisterRequest";
    case MsgType::kDeregisterReply: return "DeregisterReply";
    case MsgType::kWaitResultsRequest: return "WaitResultsRequest";
    case MsgType::kWaitResultsReply: return "WaitResultsReply";
    case MsgType::kClientNotify: return "ClientNotify";
    case MsgType::kHeartbeatRequest: return "HeartbeatRequest";
    case MsgType::kHeartbeatReply: return "HeartbeatReply";
    case MsgType::kTaskBundle: return "TaskBundle";
    case MsgType::kResultBundle: return "ResultBundle";
    case MsgType::kReplFetch: return "ReplFetch";
    case MsgType::kReplAppend: return "ReplAppend";
    case MsgType::kReplSnapshot: return "ReplSnapshot";
    case MsgType::kReplAck: return "ReplAck";
    case MsgType::kReplAckReply: return "ReplAckReply";
    case MsgType::kElectionPing: return "ElectionPing";
    case MsgType::kElectionAck: return "ElectionAck";
    case MsgType::kCacheDigest: return "CacheDigest";
    case MsgType::kDataFetch: return "DataFetch";
    case MsgType::kDataFetchReply: return "DataFetchReply";
    case MsgType::kDataEvict: return "DataEvict";
    case MsgType::kSubscribeResults: return "SubscribeResults";
    case MsgType::kResultStream: return "ResultStream";
  }
  return "Unknown";
}

std::uint32_t crc32(const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

DataFetchReply make_data_fetch_reply(std::string object,
                                     std::uint64_t object_bytes,
                                     std::string payload) {
  DataFetchReply reply;
  reply.object = std::move(object);
  reply.object_bytes = object_bytes;
  reply.crc = crc32(payload.data(), payload.size());
  reply.payload = std::move(payload);
  return reply;
}

std::string debug_summary(const Message& message) {
  std::string out = msg_type_name(message_type(message));
  const auto num = [](std::uint64_t v) { return std::to_string(v); };
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ErrorReply>) {
          out += "{" + m.message + "}";
        } else if constexpr (std::is_same_v<T, SubmitRequest>) {
          out += "{instance=" + num(m.instance_id.value) +
                 ", tasks=" + num(m.tasks.size()) + "}";
        } else if constexpr (std::is_same_v<T, SubmitReply>) {
          out += "{accepted=" + num(m.accepted) + "}";
        } else if constexpr (std::is_same_v<T, RegisterRequest>) {
          out += "{node=" + num(m.node_id.value) + ", slots=" + num(m.slots) +
                 "}";
        } else if constexpr (std::is_same_v<T, RegisterReply>) {
          out += "{executor=" + num(m.executor_id.value) + "}";
        } else if constexpr (std::is_same_v<T, Notify>) {
          out += "{executor=" + num(m.executor_id.value) +
                 (m.resource_key == kReleaseResourceKey
                      ? std::string(", release")
                      : ", key=" + num(m.resource_key)) +
                 "}";
        } else if constexpr (std::is_same_v<T, GetWorkRequest>) {
          out += "{executor=" + num(m.executor_id.value) + ", max=" +
                 (m.max_tasks == kAdaptiveBundle ? std::string("adaptive")
                                                 : num(m.max_tasks)) +
                 "}";
        } else if constexpr (std::is_same_v<T, GetWorkReply>) {
          out += "{tasks=" + num(m.tasks.size()) + "}";
        } else if constexpr (std::is_same_v<T, ResultRequest>) {
          out += "{executor=" + num(m.executor_id.value) +
                 ", results=" + num(m.results.size()) + ", want=" +
                 (m.want_tasks == kAdaptiveWant ? std::string("adaptive")
                                                : num(m.want_tasks)) +
                 "}";
        } else if constexpr (std::is_same_v<T, ResultReply>) {
          out += "{acked=" + num(m.acknowledged) +
                 ", piggyback=" + num(m.piggyback_tasks.size()) + "}";
        } else if constexpr (std::is_same_v<T, StatusReply>) {
          out += "{submitted=" + num(m.submitted_tasks) +
                 ", queued=" + num(m.queued_tasks) +
                 ", dispatched=" + num(m.dispatched_tasks) +
                 ", completed=" + num(m.completed_tasks) +
                 ", failed=" + num(m.failed_tasks) +
                 ", executors=" + num(m.registered_executors) + "}";
        } else if constexpr (std::is_same_v<T, DeregisterRequest>) {
          out += "{executor=" + num(m.executor_id.value) + ", reason=" +
                 m.reason + "}";
        } else if constexpr (std::is_same_v<T, WaitResultsRequest>) {
          out += "{instance=" + num(m.instance_id.value) +
                 ", max=" + num(m.max_results) + "}";
        } else if constexpr (std::is_same_v<T, WaitResultsReply>) {
          out += "{results=" + num(m.results.size()) + "}";
        } else if constexpr (std::is_same_v<T, ClientNotify>) {
          out += "{instance=" + num(m.instance_id.value) +
                 ", completed=" + num(m.completed) + "}";
        } else if constexpr (std::is_same_v<T, HeartbeatRequest>) {
          out += "{executor=" + num(m.executor_id.value) + "}";
        } else if constexpr (std::is_same_v<T, TaskBundle>) {
          out += "{executor=" + num(m.executor_id.value) +
                 ", seq=" + num(m.bundle_seq) +
                 ", acked=" + num(m.acknowledged) +
                 ", tasks=" + num(m.tasks.size()) + "}";
        } else if constexpr (std::is_same_v<T, ResultBundle>) {
          out += "{executor=" + num(m.executor_id.value) +
                 ", ack_seq=" + num(m.ack_seq) +
                 ", results=" + num(m.results.size()) + ", want=" +
                 (m.want_tasks == kAdaptiveWant ? std::string("adaptive")
                                                : num(m.want_tasks)) +
                 "}";
        } else if constexpr (std::is_same_v<T, ReplFetch>) {
          out += "{from_lsn=" + num(m.from_lsn) +
                 ", max_bytes=" + num(m.max_bytes) +
                 ", epoch=" + num(m.epoch) + "}";
        } else if constexpr (std::is_same_v<T, ReplAppend>) {
          out += "{first_lsn=" + num(m.first_lsn) +
                 ", last_lsn=" + num(m.last_lsn) +
                 ", bytes=" + num(m.payload.size()) +
                 ", epoch=" + num(m.epoch) + "}";
        } else if constexpr (std::is_same_v<T, ReplSnapshot>) {
          out += "{lsn=" + num(m.lsn) + ", bytes=" + num(m.payload.size()) +
                 ", epoch=" + num(m.epoch) + "}";
        } else if constexpr (std::is_same_v<T, ReplAck>) {
          out += "{applied_lsn=" + num(m.applied_lsn) +
                 ", epoch=" + num(m.epoch) + "}";
        } else if constexpr (std::is_same_v<T, ElectionPing>) {
          out += "{epoch=" + num(m.epoch) + ", rank=" + num(m.rank) +
                 ", applied_lsn=" + num(m.applied_lsn) + "}";
        } else if constexpr (std::is_same_v<T, ElectionAck>) {
          out += "{epoch=" + num(m.epoch) + ", rank=" + num(m.rank) +
                 ", applied_lsn=" + num(m.applied_lsn) +
                 (m.promoted ? ", promoted" : "") + "}";
        } else if constexpr (std::is_same_v<T, CacheDigest>) {
          out += "{executor=" + num(m.executor_id.value) +
                 ", generation=" + num(m.generation) +
                 ", port=" + num(m.data_port) +
                 ", objects=" + num(m.objects.size()) + "}";
        } else if constexpr (std::is_same_v<T, DataFetch>) {
          out += "{object=" + m.object + "}";
        } else if constexpr (std::is_same_v<T, DataFetchReply>) {
          out += "{object=" + m.object +
                 ", object_bytes=" + num(m.object_bytes) +
                 ", payload=" + num(m.payload.size()) + "}";
        } else if constexpr (std::is_same_v<T, DataEvict>) {
          out += "{executor=" + num(m.executor_id.value) + ", object=" +
                 m.object + "}";
        } else if constexpr (std::is_same_v<T, SubscribeResults>) {
          out += "{instance=" + num(m.instance_id.value) +
                 ", ack_seq=" + num(m.ack_seq) + "}";
        } else if constexpr (std::is_same_v<T, ResultStream>) {
          out += "{instance=" + num(m.instance_id.value) +
                 ", seq=" + num(m.seq) +
                 ", results=" + num(m.results.size()) + "}";
        }
      },
      message);
  return out;
}

void encode_task_spec(Writer& w, const TaskSpec& spec) {
  w.put_u64(spec.id.value);
  w.put_string(spec.executable);
  encode_string_vector(w, spec.args);
  w.put_string(spec.working_dir);
  encode_env(w, spec.env);
  w.put_double(spec.estimated_runtime_s);
  w.put_u8(static_cast<std::uint8_t>(spec.data_location));
  w.put_u8(static_cast<std::uint8_t>(spec.io_mode));
  w.put_u64(spec.input_bytes);
  w.put_u64(spec.output_bytes);
  w.put_string(spec.data_object);
  w.put_bool(spec.capture_output);
  w.put_bool(spec.expect_cached);
  w.put_string(spec.data_source);
}

TaskSpec decode_task_spec(Reader& r) {
  TaskSpec spec;
  spec.id = TaskId{r.get_u64()};
  spec.executable = r.get_string();
  spec.args = decode_string_vector(r);
  spec.working_dir = r.get_string();
  spec.env = decode_env(r);
  spec.estimated_runtime_s = r.get_double();
  spec.data_location = static_cast<DataLocation>(r.get_u8());
  spec.io_mode = static_cast<IoMode>(r.get_u8());
  spec.input_bytes = r.get_u64();
  spec.output_bytes = r.get_u64();
  spec.data_object = r.get_string();
  spec.capture_output = r.get_bool();
  spec.expect_cached = r.get_bool();
  spec.data_source = r.get_string();
  return spec;
}

void encode_task_result(Writer& w, const TaskResult& result) {
  w.put_u64(result.task_id.value);
  w.put_u64(result.executor_id.value);
  w.put_u32(static_cast<std::uint32_t>(result.exit_code));
  w.put_u8(static_cast<std::uint8_t>(result.state));
  w.put_string(result.stdout_data);
  w.put_string(result.stderr_data);
  w.put_double(result.queue_time_s);
  w.put_double(result.exec_time_s);
  w.put_double(result.overhead_s);
}

TaskResult decode_task_result(Reader& r) {
  TaskResult result;
  result.task_id = TaskId{r.get_u64()};
  result.executor_id = ExecutorId{r.get_u64()};
  result.exit_code = static_cast<int>(r.get_u32());
  result.state = static_cast<TaskState>(r.get_u8());
  result.stdout_data = r.get_string();
  result.stderr_data = r.get_string();
  result.queue_time_s = r.get_double();
  result.exec_time_s = r.get_double();
  result.overhead_s = r.get_double();
  return result;
}

namespace {

void encode_task_specs(Writer& w, const std::vector<TaskSpec>& specs) {
  w.put_varint(specs.size());
  for (const auto& spec : specs) encode_task_spec(w, spec);
}

std::vector<TaskSpec> decode_task_specs(Reader& r) {
  const auto n = r.get_varint();
  if (n > r.remaining()) throw CodecError("spec vector exceeds buffer");
  std::vector<TaskSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) specs.push_back(decode_task_spec(r));
  return specs;
}

void encode_task_results(Writer& w, const std::vector<TaskResult>& results) {
  w.put_varint(results.size());
  for (const auto& result : results) encode_task_result(w, result);
}

std::vector<TaskResult> decode_task_results(Reader& r) {
  const auto n = r.get_varint();
  if (n > r.remaining()) throw CodecError("result vector exceeds buffer");
  std::vector<TaskResult> results;
  results.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) results.push_back(decode_task_result(r));
  return results;
}

struct EncodeVisitor {
  Writer& w;

  void operator()(const ErrorReply& m) const {
    w.put_u8(static_cast<std::uint8_t>(m.code));
    w.put_string(m.message);
  }
  void operator()(const CreateInstanceRequest& m) const {
    w.put_u64(m.client_id.value);
  }
  void operator()(const CreateInstanceReply& m) const {
    w.put_u64(m.instance_id.value);
  }
  void operator()(const DestroyInstanceRequest& m) const {
    w.put_u64(m.instance_id.value);
  }
  void operator()(const DestroyInstanceReply&) const {}
  void operator()(const SubmitRequest& m) const {
    w.put_u64(m.instance_id.value);
    encode_task_specs(w, m.tasks);
    w.put_u64(m.submit_seq);
    w.put_u64(m.epoch);
  }
  void operator()(const SubmitReply& m) const {
    w.put_u64(m.accepted);
    w.put_u64(m.epoch);
  }
  void operator()(const RegisterRequest& m) const {
    w.put_u64(m.node_id.value);
    w.put_string(m.host);
    w.put_u32(m.slots);
    w.put_u64(m.allocation_id.value);
    w.put_u32(m.data_port);
    encode_string_vector(w, m.cached);
  }
  void operator()(const RegisterReply& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u64(m.epoch);
  }
  void operator()(const Notify& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u64(m.resource_key);
  }
  void operator()(const GetWorkRequest& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u32(m.max_tasks);
  }
  void operator()(const GetWorkReply& m) const { encode_task_specs(w, m.tasks); }
  void operator()(const ResultRequest& m) const {
    w.put_u64(m.executor_id.value);
    encode_task_results(w, m.results);
    w.put_u32(m.want_tasks);
  }
  void operator()(const ResultReply& m) const {
    w.put_u64(m.acknowledged);
    encode_task_specs(w, m.piggyback_tasks);
  }
  void operator()(const StatusRequest&) const {}
  void operator()(const StatusReply& m) const {
    w.put_u64(m.submitted_tasks);
    w.put_u64(m.queued_tasks);
    w.put_u64(m.dispatched_tasks);
    w.put_u64(m.completed_tasks);
    w.put_u64(m.failed_tasks);
    w.put_u64(m.retried_tasks);
    w.put_u64(m.suspicions);
    w.put_u64(m.false_suspicions);
    w.put_u64(m.quarantined_tasks);
    w.put_u32(m.registered_executors);
    w.put_u32(m.busy_executors);
    w.put_u32(m.idle_executors);
    w.put_u64(m.epoch);
  }
  void operator()(const DeregisterRequest& m) const {
    w.put_u64(m.executor_id.value);
    w.put_string(m.reason);
  }
  void operator()(const DeregisterReply&) const {}
  void operator()(const WaitResultsRequest& m) const {
    w.put_u64(m.instance_id.value);
    w.put_u32(m.max_results);
    w.put_double(m.timeout_s);
  }
  void operator()(const WaitResultsReply& m) const {
    encode_task_results(w, m.results);
  }
  void operator()(const ClientNotify& m) const {
    w.put_u64(m.instance_id.value);
    w.put_u64(m.completed);
  }
  void operator()(const HeartbeatRequest& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u64(m.digest_generation);
    w.put_u32(m.data_port);
    w.put_bool(m.has_digest);
    encode_string_vector(w, m.cached);
  }
  void operator()(const HeartbeatReply&) const {}
  void operator()(const TaskBundle& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u64(m.bundle_seq);
    w.put_u64(m.acknowledged);
    encode_task_specs(w, m.tasks);
  }
  void operator()(const ResultBundle& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u64(m.ack_seq);
    encode_task_results(w, m.results);
    w.put_u32(m.want_tasks);
  }
  void operator()(const ReplFetch& m) const {
    w.put_u64(m.from_lsn);
    w.put_u32(m.max_bytes);
    w.put_u64(m.epoch);
  }
  void operator()(const ReplAppend& m) const {
    w.put_u64(m.first_lsn);
    w.put_u64(m.last_lsn);
    w.put_string(m.payload);
    w.put_u64(m.epoch);
  }
  void operator()(const ReplSnapshot& m) const {
    w.put_u64(m.lsn);
    w.put_string(m.payload);
    w.put_u64(m.epoch);
  }
  void operator()(const ReplAck& m) const {
    w.put_u64(m.applied_lsn);
    w.put_u64(m.epoch);
  }
  void operator()(const ReplAckReply&) const {}
  void operator()(const ElectionPing& m) const {
    w.put_u64(m.epoch);
    w.put_u32(m.rank);
    w.put_u64(m.applied_lsn);
  }
  void operator()(const ElectionAck& m) const {
    w.put_u64(m.epoch);
    w.put_u32(m.rank);
    w.put_u64(m.applied_lsn);
    w.put_bool(m.promoted);
  }
  void operator()(const CacheDigest& m) const {
    w.put_u64(m.executor_id.value);
    w.put_u64(m.generation);
    w.put_u32(m.data_port);
    encode_string_vector(w, m.objects);
  }
  void operator()(const DataFetch& m) const { w.put_string(m.object); }
  void operator()(const DataFetchReply& m) const {
    w.put_string(m.object);
    w.put_u64(m.object_bytes);
    w.put_string(m.payload);
    w.put_u32(m.crc);
  }
  void operator()(const DataEvict& m) const {
    w.put_u64(m.executor_id.value);
    w.put_string(m.object);
  }
  void operator()(const SubscribeResults& m) const {
    w.put_u64(m.instance_id.value);
    w.put_u64(m.ack_seq);
  }
  void operator()(const ResultStream& m) const {
    w.put_u64(m.instance_id.value);
    w.put_u64(m.seq);
    encode_task_results(w, m.results);
  }
};

Message decode_payload(MsgType type, Reader& r) {
  switch (type) {
    case MsgType::kError: {
      ErrorReply m;
      m.code = static_cast<ErrorCode>(r.get_u8());
      m.message = r.get_string();
      return m;
    }
    case MsgType::kCreateInstanceRequest:
      return CreateInstanceRequest{ClientId{r.get_u64()}};
    case MsgType::kCreateInstanceReply:
      return CreateInstanceReply{InstanceId{r.get_u64()}};
    case MsgType::kDestroyInstanceRequest:
      return DestroyInstanceRequest{InstanceId{r.get_u64()}};
    case MsgType::kDestroyInstanceReply:
      return DestroyInstanceReply{};
    case MsgType::kSubmitRequest: {
      SubmitRequest m;
      m.instance_id = InstanceId{r.get_u64()};
      m.tasks = decode_task_specs(r);
      m.submit_seq = r.get_u64();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kSubmitReply: {
      SubmitReply m;
      m.accepted = r.get_u64();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kRegisterRequest: {
      RegisterRequest m;
      m.node_id = NodeId{r.get_u64()};
      m.host = r.get_string();
      m.slots = r.get_u32();
      m.allocation_id = AllocationId{r.get_u64()};
      m.data_port = r.get_u32();
      m.cached = decode_string_vector(r);
      return m;
    }
    case MsgType::kRegisterReply: {
      RegisterReply m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kNotify: {
      Notify m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.resource_key = r.get_u64();
      return m;
    }
    case MsgType::kGetWorkRequest: {
      GetWorkRequest m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.max_tasks = r.get_u32();
      return m;
    }
    case MsgType::kGetWorkReply: {
      GetWorkReply m;
      m.tasks = decode_task_specs(r);
      return m;
    }
    case MsgType::kResultRequest: {
      ResultRequest m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.results = decode_task_results(r);
      m.want_tasks = r.get_u32();
      return m;
    }
    case MsgType::kResultReply: {
      ResultReply m;
      m.acknowledged = r.get_u64();
      m.piggyback_tasks = decode_task_specs(r);
      return m;
    }
    case MsgType::kStatusRequest:
      return StatusRequest{};
    case MsgType::kStatusReply: {
      StatusReply m;
      m.submitted_tasks = r.get_u64();
      m.queued_tasks = r.get_u64();
      m.dispatched_tasks = r.get_u64();
      m.completed_tasks = r.get_u64();
      m.failed_tasks = r.get_u64();
      m.retried_tasks = r.get_u64();
      m.suspicions = r.get_u64();
      m.false_suspicions = r.get_u64();
      m.quarantined_tasks = r.get_u64();
      m.registered_executors = r.get_u32();
      m.busy_executors = r.get_u32();
      m.idle_executors = r.get_u32();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kDeregisterRequest: {
      DeregisterRequest m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.reason = r.get_string();
      return m;
    }
    case MsgType::kDeregisterReply:
      return DeregisterReply{};
    case MsgType::kWaitResultsRequest: {
      WaitResultsRequest m;
      m.instance_id = InstanceId{r.get_u64()};
      m.max_results = r.get_u32();
      m.timeout_s = r.get_double();
      return m;
    }
    case MsgType::kWaitResultsReply: {
      WaitResultsReply m;
      m.results = decode_task_results(r);
      return m;
    }
    case MsgType::kClientNotify: {
      ClientNotify m;
      m.instance_id = InstanceId{r.get_u64()};
      m.completed = r.get_u64();
      return m;
    }
    case MsgType::kHeartbeatRequest: {
      HeartbeatRequest m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.digest_generation = r.get_u64();
      m.data_port = r.get_u32();
      m.has_digest = r.get_bool();
      m.cached = decode_string_vector(r);
      return m;
    }
    case MsgType::kHeartbeatReply:
      return HeartbeatReply{};
    case MsgType::kTaskBundle: {
      TaskBundle m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.bundle_seq = r.get_u64();
      m.acknowledged = r.get_u64();
      m.tasks = decode_task_specs(r);
      return m;
    }
    case MsgType::kResultBundle: {
      ResultBundle m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.ack_seq = r.get_u64();
      m.results = decode_task_results(r);
      m.want_tasks = r.get_u32();
      return m;
    }
    case MsgType::kReplFetch: {
      ReplFetch m;
      m.from_lsn = r.get_u64();
      m.max_bytes = r.get_u32();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kReplAppend: {
      ReplAppend m;
      m.first_lsn = r.get_u64();
      m.last_lsn = r.get_u64();
      m.payload = r.get_string();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kReplSnapshot: {
      ReplSnapshot m;
      m.lsn = r.get_u64();
      m.payload = r.get_string();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kReplAck: {
      ReplAck m;
      m.applied_lsn = r.get_u64();
      m.epoch = r.get_u64();
      return m;
    }
    case MsgType::kReplAckReply:
      return ReplAckReply{};
    case MsgType::kElectionPing: {
      ElectionPing m;
      m.epoch = r.get_u64();
      m.rank = r.get_u32();
      m.applied_lsn = r.get_u64();
      return m;
    }
    case MsgType::kElectionAck: {
      ElectionAck m;
      m.epoch = r.get_u64();
      m.rank = r.get_u32();
      m.applied_lsn = r.get_u64();
      m.promoted = r.get_bool();
      return m;
    }
    case MsgType::kCacheDigest: {
      CacheDigest m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.generation = r.get_u64();
      m.data_port = r.get_u32();
      m.objects = decode_string_vector(r);
      return m;
    }
    case MsgType::kDataFetch: {
      DataFetch m;
      m.object = r.get_string();
      return m;
    }
    case MsgType::kDataFetchReply: {
      DataFetchReply m;
      m.object = r.get_string();
      m.object_bytes = r.get_u64();
      m.payload = r.get_string();
      m.crc = r.get_u32();
      if (crc32(m.payload.data(), m.payload.size()) != m.crc) {
        throw CodecError("data fetch payload crc mismatch");
      }
      return m;
    }
    case MsgType::kDataEvict: {
      DataEvict m;
      m.executor_id = ExecutorId{r.get_u64()};
      m.object = r.get_string();
      return m;
    }
    case MsgType::kSubscribeResults: {
      SubscribeResults m;
      m.instance_id = InstanceId{r.get_u64()};
      m.ack_seq = r.get_u64();
      return m;
    }
    case MsgType::kResultStream: {
      ResultStream m;
      m.instance_id = InstanceId{r.get_u64()};
      m.seq = r.get_u64();
      m.results = decode_task_results(r);
      return m;
    }
  }
  throw CodecError("unknown message type");
}

}  // namespace

MsgType message_type(const Message& message) {
  return static_cast<MsgType>(message.index());
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  Writer w;
  encode_message_into(w, message);
  return w.take();
}

void encode_message_into(Writer& w, const Message& message) {
  w.clear();
  w.put_u8(static_cast<std::uint8_t>(message_type(message)));
  std::visit(EncodeVisitor{w}, message);
}

Result<Message> decode_message(const std::uint8_t* data, std::size_t size) {
  try {
    Reader r(data, size);
    const auto type = static_cast<MsgType>(r.get_u8());
    Message m = decode_payload(type, r);
    return m;
  } catch (const CodecError& e) {
    return make_error(ErrorCode::kProtocolError, e.what());
  }
}

Result<Message> decode_message(const std::vector<std::uint8_t>& buffer) {
  return decode_message(buffer.data(), buffer.size());
}

}  // namespace falkon::wire
