// Binary codec: bounds-checked little-endian writer/reader with varint
// support. This replaces the SOAP/Axis XML serialisation of the original
// Java Falkon; the paper (section 4.3) traces a throughput collapse to
// Axis's grow-able array copying, which our benchmark layer models
// explicitly on top of this codec.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace falkon::wire {

/// Thrown on malformed input (truncated buffer, oversized string, bad tag).
/// Decoding failures are programming-or-network errors at the protocol
/// boundary; the net layer converts them into Status values.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(v); }

  void put_u32(std::uint32_t v) {
    const std::size_t at = buffer_.size();
    buffer_.resize(at + 4);
    std::memcpy(buffer_.data() + at, &v, 4);
  }

  void put_u64(std::uint64_t v) {
    const std::size_t at = buffer_.size();
    buffer_.resize(at + 8);
    std::memcpy(buffer_.data() + at, &v, 8);
  }

  void put_double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    put_u64(bits);
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// LEB128-style varint: compact for the small counts that dominate the
  /// protocol (bundle sizes, arg counts).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
  }

  void put_string(const std::string& s) {
    put_varint(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void put_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  /// Drop contents but keep capacity: a thread-local Writer reused across
  /// encodes stops allocating once it has seen the largest message.
  void clear() { buffer_.clear(); }

  /// Mutable view for callers that frame the encoded bytes in place (fault
  /// injection flips bytes here before the frame hits the stream).
  [[nodiscard]] std::vector<std::uint8_t>& buffer() { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buffer)
      : Reader(buffer.data(), buffer.size()) {}

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  double get_double() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  bool get_bool() { return get_u8() != 0; }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = get_u8();
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) throw CodecError("varint too long");
    }
    return v;
  }

  std::string get_string() {
    const std::uint64_t len = get_varint();
    if (len > remaining()) throw CodecError("string length exceeds buffer");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw CodecError("buffer underrun");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace falkon::wire
