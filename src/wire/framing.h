// Length-prefixed frames over a byte stream.
//
// Frame layout: u32 little-endian payload length, u64 little-endian
// correlation id, then payload bytes. The correlation id lets an RPC client
// pipeline many outstanding calls on one connection and demux the replies;
// frames outside an RPC exchange (push notifications) carry corr 0. A
// maximum frame size guards against corrupted lengths taking down the
// dispatcher with a giant allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace falkon::wire {

/// Abstract byte stream; implemented by net::TcpStream and by the in-memory
/// pipe used in tests.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Write exactly `size` bytes or fail.
  virtual Status write_all(const void* data, std::size_t size) = 0;

  /// One span of a gathered write.
  struct ConstBuf {
    const void* data{nullptr};
    std::size_t size{0};
  };

  /// Write all spans, in order, or fail. The default loops over write_all;
  /// TcpStream overrides with a single vectored syscall so a batch of
  /// coalesced frames costs one trip into the kernel.
  virtual Status write_gather(const ConstBuf* bufs, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      if (bufs[i].size == 0) continue;
      if (auto status = write_all(bufs[i].data, bufs[i].size); !status.ok()) {
        return status;
      }
    }
    return ok_status();
  }

  /// Read exactly `size` bytes or fail (kClosed on clean EOF at a frame
  /// boundary is reported by the framing layer, not here).
  virtual Status read_exact(void* data, std::size_t size) = 0;
};

inline constexpr std::size_t kMaxFrameBytes = 256 * 1024 * 1024;
inline constexpr std::size_t kFrameHeaderBytes = 12;  // u32 length + u64 corr

/// One decoded frame. Reused across read_frame calls so the payload buffer's
/// capacity amortizes instead of being reallocated per frame.
struct Frame {
  std::uint64_t corr{0};
  std::vector<std::uint8_t> payload;
};

/// An encoded frame waiting in a connection outbox for a coalesced write.
struct PendingFrame {
  std::uint64_t corr{0};
  std::vector<std::uint8_t> payload;
};

/// Pack the 12-byte header for a frame into `out`.
void put_frame_header(std::uint8_t* out, std::uint64_t corr,
                      std::uint32_t length);

/// Write one frame with correlation id 0.
Status write_frame(ByteStream& stream, const std::vector<std::uint8_t>& payload);

/// Write one frame.
Status write_frame(ByteStream& stream, std::uint64_t corr,
                   const std::vector<std::uint8_t>& payload);

/// Write `count` frames as one gathered write. `header_scratch` holds the
/// packed headers between calls so a steady-state drain loop does not
/// allocate.
Status write_frames(ByteStream& stream, const PendingFrame* frames,
                    std::size_t count,
                    std::vector<std::uint8_t>& header_scratch);

/// Read one frame, discarding the correlation id. kProtocolError on an
/// oversized length and on a stream that ends mid-frame (truncation — the
/// peer died or lied about the length); kClosed only for a clean EOF at a
/// frame boundary.
Result<std::vector<std::uint8_t>> read_frame(ByteStream& stream);

/// Read one frame into `frame`, reusing its payload buffer. Same error
/// contract as the value-returning overload.
Status read_frame(ByteStream& stream, Frame& frame);

}  // namespace falkon::wire
