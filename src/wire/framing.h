// Length-prefixed frames over a byte stream.
//
// Frame layout: u32 little-endian payload length, then payload bytes. A
// maximum frame size guards against corrupted lengths taking down the
// dispatcher with a giant allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace falkon::wire {

/// Abstract byte stream; implemented by net::TcpStream and by the in-memory
/// pipe used in tests.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Write exactly `size` bytes or fail.
  virtual Status write_all(const void* data, std::size_t size) = 0;

  /// Read exactly `size` bytes or fail (kClosed on clean EOF at a frame
  /// boundary is reported by the framing layer, not here).
  virtual Status read_exact(void* data, std::size_t size) = 0;
};

inline constexpr std::size_t kMaxFrameBytes = 256 * 1024 * 1024;

/// Write one frame.
Status write_frame(ByteStream& stream, const std::vector<std::uint8_t>& payload);

/// Read one frame. kProtocolError on an oversized length and on a stream
/// that ends mid-frame (truncation — the peer died or lied about the
/// length); kClosed only for a clean EOF at a frame boundary.
Result<std::vector<std::uint8_t>> read_frame(ByteStream& stream);

}  // namespace falkon::wire
