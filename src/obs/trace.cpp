#include "obs/trace.h"

#include <algorithm>
#include <unordered_map>

namespace falkon::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kSubmit: return "submit";
    case Stage::kQueued: return "queued";
    case Stage::kNotify: return "notify";
    case Stage::kGetWork: return "get_work";
    case Stage::kExec: return "exec";
    case Stage::kDeliverResult: return "deliver_result";
    case Stage::kAck: return "ack";
    case Stage::kDataFetch: return "data_fetch";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Tracer::Tracer(std::size_t capacity, bool enabled)
    : ring_(round_up_pow2(capacity)),
      mask_(ring_.size() - 1),
      enabled_(enabled) {}

std::vector<SpanEvent> Tracer::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, ring_.size());
  std::vector<SpanEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

void Tracer::clear() {
  head_.store(0, std::memory_order_relaxed);
}

std::vector<TaskHistory> group_by_task(const std::vector<SpanEvent>& events) {
  std::vector<TaskHistory> histories;
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (const SpanEvent& event : events) {
    if (event.task == 0) continue;
    auto [it, inserted] = index.emplace(event.task, histories.size());
    if (inserted) {
      histories.emplace_back();
      histories.back().task = event.task;
    }
    TaskHistory& history = histories[it->second];
    history.events.push_back(event);
    ++history.stage_counts[static_cast<std::size_t>(event.stage)];
  }
  return histories;
}

StageBreakdown stage_breakdown(const std::vector<SpanEvent>& events) {
  struct TaskAgg {
    double begin{0.0};
    double end{0.0};
    std::array<double, kStageCount> stage_s{};
    bool seen{false};
  };
  std::unordered_map<std::uint64_t, TaskAgg> tasks;
  tasks.reserve(events.size() / kStageCount + 1);
  for (const SpanEvent& event : events) {
    if (event.task == 0) continue;
    TaskAgg& agg = tasks[event.task];
    if (!agg.seen) {
      agg.begin = event.begin_s;
      agg.end = event.end_s;
      agg.seen = true;
    } else {
      agg.begin = std::min(agg.begin, event.begin_s);
      agg.end = std::max(agg.end, event.end_s);
    }
    const double d = event.end_s - event.begin_s;
    if (d > 0) agg.stage_s[static_cast<std::size_t>(event.stage)] += d;
  }
  StageBreakdown out;
  for (const auto& [id, agg] : tasks) {
    const double span = agg.end - agg.begin;
    if (span < 0) continue;
    double covered = 0.0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      out.stage_s[s] += agg.stage_s[s];
      covered += agg.stage_s[s];
    }
    out.total_s += span;
    // Stages can nest/overlap (deliver_result overlaps the tail of the
    // span); never let the derived gap go negative.
    out.gap_s += std::max(0.0, span - covered);
    ++out.tasks;
  }
  return out;
}

}  // namespace falkon::obs
