// falkon::obs — the observability context.
//
// One Obs object per deployment bundles the metrics Registry and the
// task-lifecycle Tracer. Components (Dispatcher, ExecutorRuntime,
// Provisioner, TcpDispatcherServer, the DES) take a nullable `obs::Obs*`
// in their config; nullptr (the default) means *no* observability — the
// instrumentation collapses to one predictable null-pointer branch per
// site and no atomic traffic, which is what keeps dispatch throughput
// unchanged when observability is off.
//
// See docs/OBSERVABILITY.md for the metric-name and span-schema catalogue.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace falkon::obs {

struct ObsConfig {
  /// Record lifecycle spans. Off by default: tracing costs one ring-buffer
  /// write per stage per task; metrics alone are cheaper.
  bool tracing{false};
  /// Span ring capacity (rounded up to a power of two). Seven stages per
  /// task: size for ~tasks * 7 to keep a whole run.
  std::size_t trace_capacity{1 << 20};
};

class Obs {
 public:
  explicit Obs(ObsConfig config = {})
      : tracer_(config.trace_capacity, config.tracing) {}

  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

  /// Tracer handle for hot paths: non-null iff tracing is on right now.
  [[nodiscard]] Tracer* tracer_if_enabled() {
    return tracer_.enabled() ? &tracer_ : nullptr;
  }

 private:
  Registry registry_;
  Tracer tracer_;
};

}  // namespace falkon::obs
