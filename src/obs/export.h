// Exporters for falkon::obs.
//
//   * Chrome trace_event JSON: load the file in Perfetto
//     (https://ui.perfetto.dev) or chrome://tracing. Each lifecycle span
//     becomes a complete ("ph":"X") event on the track of the actor that
//     performed it (tid 0 = dispatcher, tid N = executor N).
//   * Metrics snapshot JSON: one flat object per metric kind, the format
//     the BENCH_*.json artifacts use.
//   * Human-readable dump: aligned text for consoles/logs, optionally
//     emitted periodically by a background PeriodicDumper thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace falkon::obs {

/// Write events as Chrome trace_event JSON ("JSON Object Format" with a
/// traceEvents array plus process/thread-name metadata).
void write_chrome_trace(const std::vector<SpanEvent>& events,
                        std::ostream& out);

/// Snapshot `tracer` and write its events to `path`.
[[nodiscard]] Status save_chrome_trace(const Tracer& tracer,
                                       const std::string& path);

/// Write a Registry snapshot as JSON (schema "falkon.metrics.v1").
void write_metrics_json(const Snapshot& snapshot, std::ostream& out);

[[nodiscard]] Status save_metrics_json(const Registry& registry,
                                       const std::string& path);

/// Aligned text rendering of a snapshot, one metric per line.
[[nodiscard]] std::string human_dump(const Snapshot& snapshot);

/// Background thread that renders human_dump(registry.snapshot()) every
/// `interval_s` real seconds and hands it to `emit` (default: stderr).
class PeriodicDumper {
 public:
  PeriodicDumper(const Registry& registry, double interval_s,
                 std::function<void(const std::string&)> emit = {});
  ~PeriodicDumper();

  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  void stop();

 private:
  const Registry& registry_;
  double interval_s_;
  std::function<void(const std::string&)> emit_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_{false};
  std::thread thread_;
};

}  // namespace falkon::obs
