// falkon::obs metrics registry.
//
// A process-wide (or per-deployment) registry of named counters, gauges and
// log-linear histograms, designed so the *hot path* — incrementing a counter
// on every dispatched task — costs a handful of nanoseconds and never takes
// a lock:
//
//   * registration (name -> handle lookup) is mutex-guarded and meant to be
//     done once, at component construction; handles are stable for the
//     registry's lifetime;
//   * Counter spreads increments over cache-line-padded shards indexed by a
//     per-thread slot, so concurrent writers do not bounce one cache line
//     (the dispatch-throughput benches run with tracing off but metrics on);
//   * Gauge and Histogram use relaxed atomics throughout.
//
// Label support folds sorted `key=value` pairs into the registered name
// (`falkon.tasks{stage=exec}`), Prometheus-style; two metrics with the same
// name but different labels are distinct series.
//
// Readers (exporters, tests) see values that are individually atomic but
// not mutually consistent — good enough for monitoring, documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace falkon::obs {

/// `{{"stage","exec"},{"sec","on"}}` — folded into the metric name.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series name: `name` or `name{k1=v1,k2=v2}` (labels sorted).
[[nodiscard]] std::string series_name(const std::string& name,
                                      const Labels& labels);

/// Monotonic counter, sharded to keep concurrent increments cheap.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void inc(std::uint64_t n = 1) {
    cells_[shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  /// Per-thread shard index; assigned round-robin on first use per thread.
  static std::size_t shard();

  Cell cells_[kShards];
};

/// Last-write-wins instantaneous value (queue depth, busy executors, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-linear histogram over (0, +inf) with explicit underflow/overflow
/// bins: each power-of-two "decade" of [min_value, max_value) is divided
/// into `kSubBuckets` linear sub-buckets (HdrHistogram-style), giving a
/// bounded relative error of ~1/kSubBuckets across many orders of
/// magnitude — the right shape for latencies spanning 1 us .. 100 s.
/// record() is wait-free (relaxed atomics only).
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 16;

  Histogram(double min_value, double max_value);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] std::uint64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  /// Approximate quantile by linear interpolation within a bucket.
  /// Underflow samples resolve to min_value, overflow to max_value.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double range_min() const { return min_value_; }
  [[nodiscard]] double range_max() const { return max_value_; }

 private:
  [[nodiscard]] std::size_t bucket_index(double v) const;

  double min_value_;
  double max_value_;
  int min_exp_;  // exponent of the first decade (v ~ min_value * 2^k)
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_seen_{0.0};  // valid iff count_ > 0
  std::atomic<double> max_seen_{0.0};
};

/// Point-in-time copy of every series, for exporters and tests.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct HistogramView {
    std::string name;
    std::uint64_t count{0};
    std::uint64_t underflow{0};
    std::uint64_t overflow{0};
    double sum{0}, mean{0}, min{0}, max{0};
    double p50{0}, p90{0}, p99{0};
  };
  std::vector<HistogramView> histograms;
};

/// Thread-safe name -> metric registry. Handles returned by counter() /
/// gauge() / histogram() stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// Re-registration with the same series name returns the existing
  /// histogram (the original's range wins).
  Histogram& histogram(const std::string& name, double min_value,
                       double max_value, const Labels& labels = {});

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace falkon::obs
