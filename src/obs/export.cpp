#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/strings.h"

namespace falkon::obs {
namespace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON number formatting: finite, no trailing noise. NaN/inf (possible in
/// torn snapshots) degrade to 0 so the output stays parseable.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  return strf("%.9g", v);
}

}  // namespace

void write_chrome_trace(const std::vector<SpanEvent>& events,
                        std::ostream& out) {
  out << "{\"traceEvents\":[";
  bool first = true;
  std::set<std::uint64_t> actors;
  for (const SpanEvent& event : events) {
    actors.insert(event.actor);
    const double ts_us = event.begin_s * 1e6;
    const double dur_us = std::max(0.0, event.end_s - event.begin_s) * 1e6;
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << stage_name(event.stage)
        << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" << json_number(ts_us)
        << ",\"dur\":" << json_number(dur_us)
        << ",\"pid\":1,\"tid\":" << event.actor << ",\"args\":{\"task\":"
        << event.task << "}}";
  }
  // Metadata: name the process and each actor track.
  if (!first) out << ",";
  out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"falkon\"}}";
  for (std::uint64_t actor : actors) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << actor << ",\"args\":{\"name\":\""
        << (actor == 0 ? std::string("dispatcher")
                       : strf("executor %" PRIu64, actor))
        << "\"}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Status save_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  write_chrome_trace(tracer.snapshot(), out);
  out.flush();
  if (!out) return make_error(ErrorCode::kIoError, "write failed: " + path);
  return ok_status();
}

void write_metrics_json(const Snapshot& snapshot, std::ostream& out) {
  out << "{\n  \"schema\": \"falkon.metrics.v1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i ? "," : "") << "\n    \""
        << escape_json(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << escape_json(snapshot.gauges[i].first)
        << "\": " << json_number(snapshot.gauges[i].second);
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out << (i ? "," : "") << "\n    \"" << escape_json(h.name) << "\": {"
        << "\"count\": " << h.count << ", \"underflow\": " << h.underflow
        << ", \"overflow\": " << h.overflow
        << ", \"sum\": " << json_number(h.sum)
        << ", \"mean\": " << json_number(h.mean)
        << ", \"min\": " << json_number(h.min)
        << ", \"max\": " << json_number(h.max)
        << ", \"p50\": " << json_number(h.p50)
        << ", \"p90\": " << json_number(h.p90)
        << ", \"p99\": " << json_number(h.p99) << "}";
  }
  out << "\n  }\n}\n";
}

Status save_metrics_json(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  write_metrics_json(registry.snapshot(), out);
  out.flush();
  if (!out) return make_error(ErrorCode::kIoError, "write failed: " + path);
  return ok_status();
}

std::string human_dump(const Snapshot& snapshot) {
  std::string out;
  std::size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& h : snapshot.histograms) width = std::max(width, h.name.size());
  const int w = static_cast<int>(width);
  for (const auto& [name, value] : snapshot.counters) {
    out += strf("%-*s %20" PRIu64 "\n", w, name.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += strf("%-*s %20.6g\n", w, name.c_str(), value);
  }
  for (const auto& h : snapshot.histograms) {
    out += strf("%-*s count=%" PRIu64 " mean=%.6g p50=%.6g p90=%.6g"
                " p99=%.6g max=%.6g under=%" PRIu64 " over=%" PRIu64 "\n",
                w, h.name.c_str(), h.count, h.mean, h.p50, h.p90, h.p99,
                h.max, h.underflow, h.overflow);
  }
  return out;
}

PeriodicDumper::PeriodicDumper(const Registry& registry, double interval_s,
                               std::function<void(const std::string&)> emit)
    : registry_(registry),
      interval_s_(interval_s > 0 ? interval_s : 1.0),
      emit_(emit ? std::move(emit) : [](const std::string& text) {
        std::fputs(text.c_str(), stderr);
      }) {
  thread_ = std::thread([this] {
    std::unique_lock lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      emit_(human_dump(registry_.snapshot()));
      lock.lock();
    }
  });
}

PeriodicDumper::~PeriodicDumper() { stop(); }

void PeriodicDumper::stop() {
  {
    std::lock_guard lock(mu_);
    if (stop_) {
      if (!thread_.joinable()) return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace falkon::obs
