// Task-lifecycle tracer.
//
// Records one span per (task, stage) for the paper's protocol stages —
// the arrows of Figure 2, see docs/PROTOCOL.md:
//
//   submit {1,2} -> queued -> notify {3} -> get_work {4,5} -> exec
//          -> deliver_result {6} -> ack {7}
//
// Spans land in a bounded power-of-two ring buffer: a writer claims a slot
// with one relaxed fetch_add and writes the event in place, so recording
// never blocks and never allocates. When the ring wraps, the oldest events
// are overwritten and counted as dropped. snapshot() is meant for quiesced
// readers (end of a run, after joining executors); a snapshot taken while
// writers are active may contain a torn event at the wrap frontier — fine
// for monitoring, not for accounting.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace falkon::obs {

/// Protocol stage of a span. Order matches the task lifecycle.
enum class Stage : std::uint8_t {
  kSubmit = 0,     // client submit accepted by the dispatcher {1,2}
  kQueued,         // waiting in the dispatcher FIFO
  kNotify,         // dispatcher -> executor work notification {3}
  kGetWork,        // executor pull / task transfer {4,5}
  kExec,           // task running on the executor
  kDeliverResult,  // result travelling back / ingested {6}
  kAck,            // dispatcher acknowledgement (+ piggyback) {7}
  kDataFetch,      // executor staging a missing object (P2P or shared FS)
};

inline constexpr std::size_t kStageCount = 8;

[[nodiscard]] const char* stage_name(Stage stage);

/// One recorded span. Instant events have begin_s == end_s. `actor` is the
/// ExecutorId involved, or 0 for the dispatcher/client side.
struct SpanEvent {
  std::uint64_t task{0};
  std::uint64_t actor{0};
  double begin_s{0.0};
  double end_s{0.0};
  Stage stage{Stage::kSubmit};
};

class Tracer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit Tracer(std::size_t capacity, bool enabled = true);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void record(TaskId task, Stage stage, double begin_s, double end_s,
              std::uint64_t actor = 0) {
    if (!enabled()) return;
    const std::uint64_t index = head_.fetch_add(1, std::memory_order_relaxed);
    SpanEvent& slot = ring_[index & mask_];
    slot.task = task.value;
    slot.actor = actor;
    slot.begin_s = begin_s;
    slot.end_s = end_s;
    slot.stage = stage;
  }

  void instant(TaskId task, Stage stage, double t_s, std::uint64_t actor = 0) {
    record(task, stage, t_s, t_s, actor);
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total events accepted (recorded while enabled), including dropped.
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t head = recorded();
    return head > ring_.size() ? head - ring_.size() : 0;
  }

  /// The retained events, oldest first. Quiesce writers before calling if
  /// an exact snapshot matters.
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;

  /// True iff the ring retained every event ever recorded: a snapshot taken
  /// now is a *complete* protocol history, which is what the conformance
  /// and invariant checkers (falkon::testkit) require. A wrapped ring is
  /// still fine for monitoring, just not for accounting.
  [[nodiscard]] bool complete() const { return dropped() == 0; }

  /// Forget all events (drop count included). Not safe against concurrent
  /// writers.
  void clear();

 private:
  std::vector<SpanEvent> ring_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> enabled_{true};
};

/// One task's slice of a trace snapshot: its events in ring (i.e. record)
/// order plus per-stage counts. This is the view the invariant and
/// conformance checkers (falkon::testkit) replay — built once from a
/// quiesced snapshot, so checking never touches the hot path.
struct TaskHistory {
  std::uint64_t task{0};
  std::vector<SpanEvent> events;
  std::array<std::uint32_t, kStageCount> stage_counts{};

  [[nodiscard]] std::uint32_t count(Stage stage) const {
    return stage_counts[static_cast<std::size_t>(stage)];
  }
};

/// Group a snapshot by task id, preserving ring order within each task.
/// Histories are returned ordered by first appearance in the snapshot.
/// Events with task id 0 (untraced markers) are skipped.
[[nodiscard]] std::vector<TaskHistory> group_by_task(
    const std::vector<SpanEvent>& events);

/// Per-task overhead attribution of a traced run ("Runtime vs Scheduler:
/// Analyzing Dask's Overheads" is the template): every task's events fold
/// into per-stage busy time, and whatever part of its submit→ack span no
/// stage accounts for — dispatch decision, frame transit, thread wake-ups
/// — lands in `gap_s`. Instant events (notify, get_work, ack markers)
/// contribute ordering but zero duration. Shares are fractions of the
/// summed per-task spans, so they answer "where does a task's wall-clock
/// life go" independent of fleet size.
struct StageBreakdown {
  std::array<double, kStageCount> stage_s{};
  /// Span time covered by no stage (wire + scheduling + wake-up latency).
  double gap_s{0.0};
  /// Summed task spans (first begin -> last end per task).
  double total_s{0.0};
  std::uint64_t tasks{0};

  [[nodiscard]] double share(Stage stage) const {
    return total_s > 0
               ? stage_s[static_cast<std::size_t>(stage)] / total_s
               : 0.0;
  }
  [[nodiscard]] double gap_share() const {
    return total_s > 0 ? gap_s / total_s : 0.0;
  }
};

/// Fold a (quiesced) snapshot into the per-stage breakdown. Tasks with a
/// wrapped/torn history simply contribute what survived.
[[nodiscard]] StageBreakdown stage_breakdown(
    const std::vector<SpanEvent>& events);

}  // namespace falkon::obs
