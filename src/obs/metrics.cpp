#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace falkon::obs {

std::string series_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name;
  out.push_back('{');
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += sorted[i].first;
    out.push_back('=');
    out += sorted[i].second;
  }
  out.push_back('}');
  return out;
}

std::size_t Counter::shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current &&
         !target.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current &&
         !target.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(double min_value, double max_value)
    : min_value_(min_value > 0 ? min_value : 1e-9),
      max_value_(std::max(max_value, min_value_ * 2)),
      min_exp_(std::ilogb(min_value_)),
      counts_(static_cast<std::size_t>(
                  std::ilogb(max_value_ / min_value_) + 1) *
              kSubBuckets),
      min_seen_(std::numeric_limits<double>::infinity()),
      max_seen_(-std::numeric_limits<double>::infinity()) {}

std::size_t Histogram::bucket_index(double v) const {
  // v lies in decade k when v in [min * 2^k, min * 2^(k+1)); the decade is
  // split linearly into kSubBuckets. ilogb differences only approximate k
  // when min_value is not a power of two, so correct by one step if needed.
  int k = std::max(0, std::ilogb(v) - min_exp_);
  double decade_lo = std::ldexp(min_value_, k);
  if (v < decade_lo && k > 0) {
    --k;
    decade_lo = std::ldexp(min_value_, k);
  }
  const double rel = std::max(0.0, (v - decade_lo) / decade_lo);
  auto sub = static_cast<std::size_t>(rel * static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return static_cast<std::size_t>(k) * kSubBuckets + sub;
}

void Histogram::record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  atomic_min_double(min_seen_, v);
  atomic_max_double(max_seen_, v);
  if (!(v >= min_value_)) {  // catches negatives and NaN too
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (v >= max_value_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t index = std::min(bucket_index(v), counts_.size() - 1);
  counts_[index].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const auto n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() ? min_seen_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? max_seen_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::bucket_lower(std::size_t i) const {
  const std::size_t k = i / kSubBuckets;
  const std::size_t sub = i % kSubBuckets;
  const double decade_lo = std::ldexp(min_value_, static_cast<int>(k));
  return decade_lo +
         decade_lo * static_cast<double>(sub) / static_cast<double>(kSubBuckets);
}

double Histogram::bucket_upper(std::size_t i) const {
  return i + 1 < counts_.size() ? bucket_lower(i + 1) : max_value_;
}

double Histogram::quantile(double q) const {
  const auto total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = static_cast<double>(underflow());
  if (target <= cumulative) return min_value_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const double next = cumulative + static_cast<double>(c);
    if (next >= target) {
      const double frac = (target - cumulative) / static_cast<double>(c);
      return bucket_lower(i) + frac * (bucket_upper(i) - bucket_lower(i));
    }
    cumulative = next;
  }
  return max_value_;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::string key = series_name(name, labels);
  std::lock_guard lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = series_name(name, labels);
  std::lock_guard lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, double min_value,
                               double max_value, const Labels& labels) {
  const std::string key = series_name(name, labels);
  std::lock_guard lock(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(min_value, max_value);
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramView view;
    view.name = name;
    view.count = hist->count();
    view.underflow = hist->underflow();
    view.overflow = hist->overflow();
    view.sum = hist->sum();
    view.mean = hist->mean();
    view.min = hist->min();
    view.max = hist->max();
    view.p50 = hist->quantile(0.50);
    view.p90 = hist->quantile(0.90);
    view.p99 = hist->quantile(0.99);
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

}  // namespace falkon::obs
