#include "sim/event_queue.h"

namespace falkon::sim {

void Simulation::schedule_at(double t, Event event) {
  if (t < now_) t = now_;
  queue_.push(Entry{t, next_seq_++, std::move(event)});
}

void Simulation::run(std::uint64_t max_events) {
  while (!queue_.empty() && executed_ < max_events) {
    // std::priority_queue::top() is const; move via const_cast is safe here
    // because we pop immediately after.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.t;
    ++executed_;
    entry.event();
  }
}

void Simulation::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.t;
    ++executed_;
    entry.event();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace falkon::sim
