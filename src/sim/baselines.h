// Baseline models: direct per-task submission to heavyweight LRMs
// (GRAM4+PBS, Condor), as the paper's comparison points in Table 2 and
// Figures 7/14/15.
//
// The paper derives Condor v6.9.3's efficiency curve analytically from its
// cited 11 tasks/s: "we computed the per task overhead of 0.0909 seconds,
// which we could then add to the ideal time of each respective task length
// to get an estimated task execution time. With this execution time, we
// could compute speedup, which we then used to compute efficiency." We
// implement exactly that derivation, plus a makespan model that accounts
// for the serial dispatch bottleneck when many short tasks flood the LRM.
#pragma once

#include <cstdint>
#include <string>

namespace falkon::sim {

struct BaselineSystem {
  std::string name;
  /// Serial per-task dispatch overhead (1/throughput on sleep-0 tasks).
  double per_task_overhead_s;
};

[[nodiscard]] inline BaselineSystem baseline_pbs_v218() {
  return {"PBS (v2.1.8)", 1.0 / 0.45};
}
[[nodiscard]] inline BaselineSystem baseline_condor_v672() {
  return {"Condor (v6.7.2)", 1.0 / 0.49};
}
[[nodiscard]] inline BaselineSystem baseline_condor_v693() {
  return {"Condor (v6.9.3)", 0.0909};
}
[[nodiscard]] inline BaselineSystem baseline_condor_j2() {
  return {"Condor-J2", 1.0 / 22.0};
}
[[nodiscard]] inline BaselineSystem baseline_boinc() {
  return {"BOINC", 1.0 / 93.0};
}

/// Paper-style derived efficiency (section 4.4, Figure 7 setup: 64 tasks
/// on 64 processors): tasks clear the serial dispatch stage one per
/// `per_task_overhead`, so the batch finishes at tasks*overhead +
/// task_length and efficiency = L / (L + tasks*overhead). This reproduces
/// the paper's anchors: Condor v6.9.3 hits 90/95/99% at 50/100/1000 s, the
/// production PBS/Condor need ~1200 s for 90% and are <1% at 1 s.
[[nodiscard]] double derived_efficiency(const BaselineSystem& system,
                                        double task_length_s,
                                        int concurrent_tasks = 64);

/// Makespan for `tasks` tasks of length `task_length_s` on `nodes` nodes
/// when every task is submitted as a separate LRM job: tasks leave the
/// dispatch bottleneck every overhead seconds and then occupy a node for
/// task_length. Two regimes: dispatch-bound and node-bound.
[[nodiscard]] double baseline_makespan(const BaselineSystem& system,
                                       std::uint64_t tasks,
                                       double task_length_s, int nodes);

/// Measured-style efficiency on a fixed pool: ideal_time / makespan, with
/// ideal = ceil(tasks/nodes) * task_length.
[[nodiscard]] double baseline_efficiency(const BaselineSystem& system,
                                         std::uint64_t tasks,
                                         double task_length_s, int nodes);

}  // namespace falkon::sim
