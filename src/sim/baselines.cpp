#include "sim/baselines.h"

#include <algorithm>
#include <cmath>

namespace falkon::sim {

double derived_efficiency(const BaselineSystem& system, double task_length_s,
                          int concurrent_tasks) {
  if (task_length_s <= 0) return 0.0;
  return task_length_s /
         (task_length_s +
          system.per_task_overhead_s * std::max(1, concurrent_tasks));
}

double baseline_makespan(const BaselineSystem& system, std::uint64_t tasks,
                         double task_length_s, int nodes) {
  if (tasks == 0) return 0.0;
  nodes = std::max(nodes, 1);
  const double overhead = system.per_task_overhead_s;
  // Tasks clear the serial dispatch stage at times overhead, 2*overhead, ...
  // and then run task_length on a node. If nodes outnumber in-flight tasks
  // the makespan is dispatch-bound; otherwise node contention adds waves.
  const double dispatch_bound =
      static_cast<double>(tasks) * overhead + task_length_s;
  const double node_bound =
      std::ceil(static_cast<double>(tasks) / nodes) * task_length_s +
      overhead * std::min<double>(static_cast<double>(tasks),
                                  static_cast<double>(nodes));
  return std::max(dispatch_bound, node_bound);
}

double baseline_efficiency(const BaselineSystem& system, std::uint64_t tasks,
                           double task_length_s, int nodes) {
  if (tasks == 0 || task_length_s <= 0) return 0.0;
  const double ideal =
      std::ceil(static_cast<double>(tasks) / std::max(nodes, 1)) *
      task_length_s;
  return ideal / baseline_makespan(system, tasks, task_length_s, nodes);
}

}  // namespace falkon::sim
