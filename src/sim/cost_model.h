// Cost models calibrated against the paper's measurements.
//
// The original Falkon is Java on GT4 web services; its throughput ceilings
// come from per-WS-call CPU work on the dispatcher host and per-call client
// work on the executor. We expose those as first-class parameters,
// calibrated to the paper's measured numbers:
//   * GT4 container, no security:       ~500 WS calls/s      (Figure 3)
//   * Falkon dispatch, no security:     487 tasks/s           (Figure 3)
//   * Falkon dispatch, GSISecureConv.:  204 tasks/s           (Figure 3)
//   * single executor, no security:     28 tasks/s            (Figure 3)
//   * single executor, with security:   12 tasks/s            (Figure 3)
//   * unbundled submit:                 ~20 tasks/s, peak ~1500 tasks/s at
//                                       ~300 tasks/bundle     (Figure 5)
//   * JVM GC stalls: raw throughput samples at 0 while the 60 s moving
//                                       average sits at ~298  (Figure 8)
#pragma once

#include <cstdint>

namespace falkon::sim {

struct WsCostModel {
  bool security{false};

  /// Dispatcher-host CPU seconds consumed per task dispatch exchange (the
  /// result-delivery WS call whose response piggy-backs the next task).
  double dispatch_cpu_s{1.0 / 487.0};
  double dispatch_cpu_secure_s{1.0 / 204.0};

  /// Dispatcher CPU for the notify + get-work path (used when piggy-backing
  /// cannot be applied: first task an executor receives, or piggy-backing
  /// disabled). Two exchanges instead of one.
  double notify_getwork_cpu_s{1.6 / 487.0};
  double notify_getwork_cpu_secure_s{1.6 / 204.0};

  /// Executor-side client processing per task (WS stub, thread creation,
  /// exec() setup). Calibrated so one executor sustains 28 / 12 tasks/s.
  double executor_overhead_s{1.0 / 28.0 - 1.0 / 487.0 - 2.0 * 0.0015};
  double executor_overhead_secure_s{1.0 / 12.0 - 1.0 / 204.0 - 2.0 * 0.0015};

  /// One-way network latency (paper: 1-2 ms between testbed sites).
  double latency_s{0.0015};

  [[nodiscard]] double dispatch_cost() const {
    return security ? dispatch_cpu_secure_s : dispatch_cpu_s;
  }
  [[nodiscard]] double notify_getwork_cost() const {
    return security ? notify_getwork_cpu_secure_s : notify_getwork_cpu_s;
  }
  [[nodiscard]] double executor_cost() const {
    return security ? executor_overhead_secure_s : executor_overhead_s;
  }
};

/// Client->dispatcher submission cost as a function of bundle size,
/// including the Axis grow-able-array pathology the paper blames for the
/// throughput decline beyond ~300 tasks per bundle (section 4.3): Axis
/// re-allocates and copies the array as it grows, an O(n^2) term.
struct BundlingCostModel {
  /// Fixed per-message cost (WS envelope, HTTP, connection handling).
  double per_message_s{0.048};
  /// Marginal serialisation cost per bundled task.
  double per_task_s{0.00045};
  /// Grow-array copy coefficient: cost += coeff * n^2.
  double growarray_coeff_s{5.5e-7};

  [[nodiscard]] double bundle_cost_s(int tasks) const {
    return per_message_s + per_task_s * tasks +
           growarray_coeff_s * static_cast<double>(tasks) *
               static_cast<double>(tasks);
  }

  /// Steady-state submit throughput for a given bundle size.
  [[nodiscard]] double throughput(int bundle) const {
    return bundle / bundle_cost_s(bundle);
  }
};

/// JVM stop-the-world garbage collection on the dispatcher host: after
/// every `period_busy_s` of accumulated dispatcher CPU work, the dispatcher
/// stalls for `pause_s`. Tuned so raw 1-second throughput samples hit 0
/// while the average drops from ~450 to ~300 tasks/s (Figure 8).
struct GcModel {
  bool enabled{false};
  double period_busy_s{3.0};
  double pause_s{1.5};
};

}  // namespace falkon::sim
