// Discrete-event simulation core.
//
// A minimal, deterministic DES: events are (time, sequence, closure) tuples
// processed in time order with FIFO tie-breaking, so a run is a pure
// function of its inputs and seed. Used to reproduce the paper's
// experiments at scales a single machine cannot host natively (54,000
// executors, 2,000,000 tasks).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace falkon::sim {

class Simulation {
 public:
  using Event = std::function<void()>;

  /// Schedule `event` at absolute time `t` (clamped to now).
  void schedule_at(double t, Event event);

  /// Schedule `event` `dt` seconds from now.
  void schedule_in(double dt, Event event) { schedule_at(now_ + dt, std::move(event)); }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Run until the event queue drains (or the safety cap trips).
  void run(std::uint64_t max_events = ~0ULL);

  /// Run events with time <= t_end; the clock ends at exactly t_end.
  void run_until(double t_end);

 private:
  struct Entry {
    double t;
    std::uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
};

}  // namespace falkon::sim
