#include "sim/sim_falkon.h"

#include <algorithm>
#include <deque>

#include "common/rng.h"

namespace falkon::sim {
namespace {

/// Whole-run simulation state; the event closures capture a pointer to it.
class FalkonSim {
 public:
  explicit FalkonSim(const SimFalkonConfig& config)
      : config_(config), rng_(config.seed) {
    idle_.reserve(static_cast<std::size_t>(config.executors));
    for (int e = config.executors - 1; e >= 0; --e) idle_.push_back(e);
    busy_count_ = 0;
    if (config_.obs != nullptr) {
      tracer_ = config_.obs->tracer_if_enabled();
      obs::Registry& reg = config_.obs->registry();
      m_submitted_ = &reg.counter("falkon.sim.tasks_submitted");
      m_completed_ = &reg.counter("falkon.sim.tasks_completed");
      m_overhead_ = &reg.histogram("falkon.sim.overhead_s", 1e-6, 1e3);
      m_failed_ = &reg.counter("falkon.sim.tasks_failed");
      m_retried_ = &reg.counter("falkon.sim.tasks_retried");
    }
  }

  SimFalkonResult run() {
    schedule_next_bundle(0.0);
    schedule_sampler();
    sim_.run();
    result_.makespan_s = finish_time_;
    result_.completed = completed_;
    result_.failed = failed_;
    return std::move(result_);
  }

 private:
  // ---- dispatcher host CPU (a serial resource with GC stalls) ----
  double dispatcher_op(double arrival, double cpu_cost) {
    double start = std::max(cpu_free_, arrival);
    if (config_.gc.enabled && gc_busy_accum_ >= config_.gc.period_busy_s) {
      start += config_.gc.pause_s;  // stop-the-world collection
      gc_busy_accum_ = 0.0;
    }
    cpu_free_ = start + cpu_cost;
    gc_busy_accum_ += cpu_cost;
    return cpu_free_;
  }

  // ---- client submission {1,2} ----
  void schedule_next_bundle(double not_before) {
    if (submitted_ >= config_.task_count) return;
    const int bundle = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(std::max(1, config_.client_bundle)),
        config_.task_count - submitted_));
    submitted_ += static_cast<std::uint64_t>(bundle);

    // The submission pipeline (client-side serialisation + WS transfer +
    // ingest) is its own serial resource, separate from the dispatch CPU:
    // bundles leave it every bundle_cost_s(n) (this is exactly the Figure 5
    // submission-throughput curve, grow-array term included).
    double arrival = std::max(not_before, sim_.now()) +
                     config_.bundling.bundle_cost_s(bundle);
    if (config_.client_submit_rate_per_s > 0) {
      // Additionally rate-limited client: bundles arrive on a cadence.
      arrival = std::max(arrival, next_rate_slot_);
      next_rate_slot_ = arrival + bundle / config_.client_submit_rate_per_s;
    }
    sim_.schedule_at(arrival, [this, bundle] {
      pending_ += static_cast<std::uint64_t>(bundle);
      if (config_.fault != nullptr) {
        pending_attempts_.insert(pending_attempts_.end(),
                                 static_cast<std::size_t>(bundle), 1);
      }
      if (m_submitted_) m_submitted_->inc(static_cast<std::uint64_t>(bundle));
      if (tracer_) {
        const double now = sim_.now();
        for (int i = 0; i < bundle; ++i) {
          const std::uint64_t id = ++last_task_id_;
          tracer_->instant(TaskId{id}, obs::Stage::kSubmit, now);
          pending_tasks_.push_back({id, now});
        }
      }
      pump_assignments();
      schedule_next_bundle(sim_.now());
    });
  }

  /// Tracing bookkeeping for one dispatch: pops the queue-head task,
  /// records queued/notify/get_work spans, and returns the TaskId (0 when
  /// tracing is off). `notify_begin -> ready` is the dispatcher CPU window,
  /// `ready -> handoff` the transfer to the executor; a piggy-backed
  /// dispatch passes notify_begin == ready (the ack carried the task).
  std::uint64_t trace_dispatch(double notify_begin, double ready,
                               double handoff, int executor) {
    if (!tracer_ || pending_tasks_.empty()) return 0;
    const PendingTask task = pending_tasks_.front();
    pending_tasks_.pop_front();
    const std::uint64_t actor = static_cast<std::uint64_t>(executor) + 1;
    tracer_->record(TaskId{task.id}, obs::Stage::kQueued, task.submit_s,
                    notify_begin);
    tracer_->record(TaskId{task.id}, obs::Stage::kNotify, notify_begin, ready,
                    actor);
    tracer_->record(TaskId{task.id}, obs::Stage::kGetWork, ready, handoff,
                    actor);
    return task.id;
  }

  // ---- fault bookkeeping (active only when config_.fault != nullptr) ----

  /// Per-queued-task attempt counters, aligned with `pending_` (FIFO).
  int pop_attempts() {
    if (config_.fault == nullptr) return 1;
    const int attempts = pending_attempts_.front();
    pending_attempts_.pop_front();
    return attempts;
  }

  /// A lost attempt resurfaces after the replay timeout: requeue with an
  /// incremented attempt count, or fail terminally once the budget is gone.
  void replay_or_fail(std::uint64_t task, int attempts) {
    if (attempts > config_.max_retries) {
      ++failed_;
      finish_time_ = sim_.now();
      if (m_failed_) m_failed_->inc();
      return;
    }
    ++result_.retried;
    if (m_retried_) m_retried_->inc();
    ++pending_;
    if (config_.fault != nullptr) pending_attempts_.push_back(attempts + 1);
    if (tracer_) pending_tasks_.push_back({task, sim_.now()});
    pump_assignments();
  }

  // ---- dispatch {3,4,5}: notify + get-work for idle executors ----
  void pump_assignments() {
    while (pending_ > 0 && !idle_.empty()) {
      if (config_.fault != nullptr) {
        const fault::Outcome outcome =
            config_.fault->sample(fault::Site::kDispatcherNotify);
        if (outcome.action == fault::Action::kDrop) {
          // Lost notification: the assignment never reaches an executor;
          // the replay sweep re-dispatches it later.
          --pending_;
          const int attempts = pop_attempts();
          std::uint64_t task = 0;
          if (tracer_ && !pending_tasks_.empty()) {
            task = pending_tasks_.front().id;
            pending_tasks_.pop_front();
          }
          ++result_.injected_faults;
          sim_.schedule_at(sim_.now() + config_.replay_timeout_s,
                           [this, task, attempts] {
                             replay_or_fail(task, attempts);
                           });
          continue;
        }
      }
      const int executor = idle_.back();
      idle_.pop_back();
      --pending_;
      const int attempts = pop_attempts();
      ++busy_count_;
      if (busy_count_ == config_.executors && result_.full_busy_at_s < 0) {
        result_.full_busy_at_s = sim_.now();
      }
      const double notify_begin = sim_.now();
      const double ready = dispatcher_op(notify_begin, config_.ws.notify_getwork_cost());
      const double task_at_executor = ready + config_.ws.latency_s;
      const std::uint64_t task =
          trace_dispatch(notify_begin, ready, task_at_executor, executor);
      // Overhead accounting starts when the executor receives the task,
      // matching the paper's executor-side measurement (Figure 10).
      sim_.schedule_at(task_at_executor, [this, executor, task, attempts] {
        execute_task(executor, task, sim_.now(), attempts);
      });
    }
  }

  // ---- execution on the executor ----
  void execute_task(int executor, std::uint64_t task, double picked_up,
                    int attempts) {
    double extra = 0.0;
    if (config_.fault != nullptr) {
      const fault::Outcome outcome =
          config_.fault->sample(fault::Site::kExecutorTask);
      if (outcome.action == fault::Action::kCrash ||
          outcome.action == fault::Action::kHang) {
        // The attempt dies with (or wedges inside) the executor. At the
        // replay timeout the failure detector notices: the slot returns to
        // the pool (crash: respawned; hang: the stuck attempt abandoned)
        // and the task replays or fails.
        ++result_.injected_faults;
        sim_.schedule_at(sim_.now() + config_.replay_timeout_s,
                         [this, executor, task, attempts] {
                           --busy_count_;
                           idle_.push_back(executor);
                           replay_or_fail(task, attempts);
                           pump_assignments();
                         });
        return;
      }
      if (outcome.action == fault::Action::kSlow ||
          outcome.action == fault::Action::kDelay) {
        ++result_.injected_faults;
        extra = std::max(outcome.param, 0.0);
      }
    }
    double crowd = config_.executor_crowding *
                   rng_.uniform(0.85, 1.25);  // CPU-share jitter
    if (config_.straggler_probability > 0 &&
        rng_.bernoulli(config_.straggler_probability)) {
      crowd *= rng_.uniform(2.0, config_.straggler_factor);
    }
    const double overhead =
        config_.ws.executor_cost() * std::max(1.0, crowd) + extra;
    const double done = sim_.now() + config_.task_length_s + overhead;
    if (tracer_ && task != 0) {
      tracer_->record(TaskId{task}, obs::Stage::kExec, sim_.now(), done,
                      static_cast<std::uint64_t>(executor) + 1);
    }
    sim_.schedule_at(done, [this, executor, task, picked_up, attempts] {
      deliver_result(executor, task, picked_up, attempts);
    });
  }

  // ---- result delivery + piggy-backed next task {6,7} ----
  void deliver_result(int executor, std::uint64_t task, double picked_up,
                      int attempts) {
    const double done = sim_.now();
    const double arrival = done + config_.ws.latency_s;
    sim_.schedule_at(arrival, [this, executor, task, picked_up, done,
                               arrival, attempts] {
      if (config_.fault != nullptr) {
        const fault::Outcome outcome =
            config_.fault->sample(fault::Site::kDispatcherAck);
        if (outcome.action == fault::Action::kDrop) {
          // Result lost in flight: the executor abandons the exchange and
          // returns to the pool; the dispatcher replays the task later.
          ++result_.injected_faults;
          --busy_count_;
          idle_.push_back(executor);
          pump_assignments();
          sim_.schedule_at(sim_.now() + config_.replay_timeout_s,
                           [this, task, attempts] {
                             replay_or_fail(task, attempts);
                           });
          return;
        }
      }
      const double acked = dispatcher_op(arrival, config_.ws.dispatch_cost());
      if (tracer_ && task != 0) {
        const std::uint64_t actor = static_cast<std::uint64_t>(executor) + 1;
        tracer_->record(TaskId{task}, obs::Stage::kDeliverResult, done,
                        arrival, actor);
        tracer_->record(TaskId{task}, obs::Stage::kAck, arrival, acked, actor);
      }
      sim_.schedule_at(acked, [this, executor, picked_up] {
        on_task_complete(picked_up);
        if (config_.piggyback && pending_ > 0) {
          --pending_;
          const int next_attempts = pop_attempts();
          const double acked_at = sim_.now();
          const double next_at = acked_at + config_.ws.latency_s;
          // Piggy-backed hand-off: the ack {7} carries the next task, so
          // its notify window is empty and get_work is just the transfer.
          const std::uint64_t next =
              trace_dispatch(acked_at, acked_at, next_at, executor);
          sim_.schedule_at(next_at, [this, executor, next, next_attempts] {
            execute_task(executor, next, sim_.now(), next_attempts);
          });
        } else {
          --busy_count_;
          idle_.push_back(executor);
          pump_assignments();
        }
      });
    });
  }

  void on_task_complete(double picked_up) {
    ++completed_;
    finish_time_ = sim_.now();
    throughput_.record(sim_.now());
    const double overhead = (sim_.now() - picked_up) - config_.task_length_s;
    result_.overhead_stats.add(overhead);
    if (m_completed_) {
      m_completed_->inc();
      m_overhead_->record(overhead);
    }
    if (config_.record_per_task_overhead) {
      result_.per_task_overhead_s.push_back(static_cast<float>(overhead));
    }
  }

  // ---- periodic series sampler ----
  void schedule_sampler() {
    sim_.schedule_in(config_.sample_interval_s, [this] {
      result_.queue_series.push_back(static_cast<double>(pending_));
      result_.busy_series.push_back(static_cast<double>(busy_count_));
      if (completed_ + failed_ < config_.task_count) schedule_sampler();
    });
  }

  SimFalkonConfig config_;
  Rng rng_;
  Simulation sim_;

  double cpu_free_{0.0};
  double gc_busy_accum_{0.0};
  std::uint64_t submitted_{0};
  std::uint64_t pending_{0};
  std::uint64_t completed_{0};
  std::uint64_t failed_{0};
  /// Attempt count per queued task, FIFO-aligned with pending_ (only
  /// maintained when fault injection is on).
  std::deque<int> pending_attempts_;
  double next_rate_slot_{0.0};
  double finish_time_{0.0};
  std::vector<int> idle_;
  int busy_count_{0};

  // Observability (null when config_.obs is null / tracing off). The FIFO
  // of traced task ids shadows `pending_` so the spans carry real TaskIds
  // without slowing the counter-only fast path.
  struct PendingTask {
    std::uint64_t id;
    double submit_s;
  };
  obs::Tracer* tracer_{nullptr};
  obs::Counter* m_submitted_{nullptr};
  obs::Counter* m_completed_{nullptr};
  obs::Histogram* m_overhead_{nullptr};
  obs::Counter* m_failed_{nullptr};
  obs::Counter* m_retried_{nullptr};
  std::deque<PendingTask> pending_tasks_;
  std::uint64_t last_task_id_{0};

  ThroughputSampler throughput_{1.0};
  SimFalkonResult result_;

 public:
  ThroughputSampler& throughput() { return throughput_; }

  SimFalkonResult run_and_collect() {
    auto result = run();
    result.throughput_samples = throughput_.samples();
    return result;
  }
};

}  // namespace

SimFalkonResult simulate_falkon(const SimFalkonConfig& config) {
  FalkonSim sim(config);
  return sim.run_and_collect();
}

double falkon_throughput(int executors, bool security, std::uint64_t tasks) {
  SimFalkonConfig config;
  config.executors = executors;
  config.task_count = tasks;
  config.task_length_s = 0.0;
  config.ws.security = security;
  config.client_bundle = 100;
  return simulate_falkon(config).avg_throughput();
}

}  // namespace falkon::sim
