// Discrete-event model of a Falkon deployment.
//
// Mirrors the real core::Dispatcher/ExecutorRuntime protocol — submit
// bundles, notify/get-work dispatch, result delivery with piggy-backed next
// tasks — but charges calibrated CPU/latency costs (cost_model.h) instead
// of running threads, so it scales to the paper's 54,000 executors and
// 2,000,000 tasks on one machine. The policy semantics (piggy-backing,
// bundling, FIFO queue) are the same as the real stack; tests cross-check
// the two at small scale.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace falkon::sim {

struct SimFalkonConfig {
  int executors{64};
  std::uint64_t task_count{1000};
  /// Homogeneous task runtime ("sleep N"); I/O-bound workloads fold their
  /// modelled staging time into this value.
  double task_length_s{0.0};

  WsCostModel ws;
  GcModel gc;
  BundlingCostModel bundling;

  /// Client-dispatcher bundle size {1,2}.
  int client_bundle{100};
  /// Bundle arrival rate limit in tasks/s (0 = submit as fast as the
  /// bundling cost allows).
  double client_submit_rate_per_s{0.0};
  /// Piggy-back next task on result acks {6,7}.
  bool piggyback{true};

  /// Executors per physical machine divided by CPUs (Figure 9/10 runs 900
  /// executors per machine: each gets a fraction of the CPU, multiplying
  /// the executor-side overhead). 1.0 = dedicated CPU per executor.
  double executor_crowding{1.0};
  /// Rare stragglers: with this probability a task's handling overhead is
  /// further multiplied by straggler_factor (scheduling unluckiness on a
  /// 900-way-shared machine; paper Figure 10 max was 1.3 s against a
  /// <200 ms bulk).
  double straggler_probability{0.0};
  double straggler_factor{8.0};

  std::uint64_t seed{1};
  double sample_interval_s{1.0};
  /// Keep per-task overhead samples (Figure 10); costs 4 bytes/task.
  bool record_per_task_overhead{false};

  /// Observability context. With tracing enabled the simulation assigns
  /// TaskIds 1..task_count and records all seven lifecycle spans per task
  /// (under piggy-backing, notify/get_work collapse to zero-length markers
  /// at the ack that carried the task — see docs/OBSERVABILITY.md).
  /// nullptr (default) keeps the counter-only fast path.
  obs::Obs* obs{nullptr};

  // ---- fault model (docs/FAULTS.md) ----

  /// Fault injection; nullptr (default) keeps the fault-free fast path.
  /// Sampled at Site::kExecutorTask per execution attempt (kCrash/kHang:
  /// the attempt is lost and the task replays after replay_timeout_s;
  /// kSlow/kDelay: param seconds added to the run), Site::kDispatcherNotify
  /// per dispatch (kDrop: the assignment never reaches the executor) and
  /// Site::kDispatcherAck per delivery (kDrop: the result is lost in
  /// flight). Same-seed runs are bit-reproducible: the DES is
  /// single-threaded, so site op-counters advance identically.
  fault::FaultInjector* fault{nullptr};
  /// Model time before a lost attempt is detected and re-dispatched
  /// (mirrors DispatcherConfig::replay_timeout_s).
  double replay_timeout_s{5.0};
  /// Re-dispatches allowed before the task fails terminally (mirrors
  /// ReplayPolicy::max_retries).
  int max_retries{3};
};

struct SimFalkonResult {
  double makespan_s{0.0};
  std::uint64_t completed{0};
  /// Tasks that exhausted their retry budget (terminal failures). Every
  /// submitted task ends in exactly one of completed/failed.
  std::uint64_t failed{0};
  /// Re-dispatches after a lost attempt.
  std::uint64_t retried{0};
  /// Fault-injector outcomes that actually perturbed the run.
  std::uint64_t injected_faults{0};

  /// Raw completions per sample interval (Figure 8 light dots).
  std::vector<std::size_t> throughput_samples;
  /// Dispatcher wait-queue length per sample interval (Figure 8 black line).
  std::vector<double> queue_series;
  /// Busy executors per sample interval (Figure 9 black line).
  std::vector<double> busy_series;

  Accumulator overhead_stats;
  std::vector<float> per_task_overhead_s;  // ordered by completion

  /// First time every executor was simultaneously busy (<0: never).
  double full_busy_at_s{-1.0};

  [[nodiscard]] double avg_throughput() const {
    return makespan_s > 0 ? static_cast<double>(completed) / makespan_s : 0.0;
  }
};

[[nodiscard]] SimFalkonResult simulate_falkon(const SimFalkonConfig& config);

/// Convenience: steady-state dispatch throughput for "sleep 0" tasks with
/// the given executor count and security setting (Figure 3 points).
[[nodiscard]] double falkon_throughput(int executors, bool security,
                                       std::uint64_t tasks = 20000);

}  // namespace falkon::sim
