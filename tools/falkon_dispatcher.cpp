// falkon-dispatcher: standalone dispatcher daemon.
//
//   $ falkon-dispatcher [--rpc-port N] [--push-port N] [--config file]
//                       [--piggyback 0|1] [--max-retries N] [--verbose]
//
// Serves the Falkon wire protocol on two ports (WS-style RPC + the TCP
// notification channel) until SIGINT/SIGTERM. Executors join with
// falkon-executor, clients submit with falkon-submit.
#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "common/config.h"
#include "common/logging.h"
#include "core/service_tcp.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace falkon;

  Config config;
  std::uint16_t rpc_port = 0;
  std::uint16_t push_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--rpc-port") {
      rpc_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--push-port") {
      push_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--config") {
      auto loaded = Config::load_file(next());
      if (!loaded.ok()) {
        std::fprintf(stderr, "config: %s\n", loaded.error().str().c_str());
        return 1;
      }
      config = loaded.take();
    } else if (arg == "--piggyback") {
      config.set("piggyback", next());
    } else if (arg == "--max-retries") {
      config.set("max_retries", next());
    } else if (arg == "--verbose") {
      Logger::instance().set_level(LogLevel::kDebug);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rpc-port N] [--push-port N] [--config file]"
                   " [--piggyback 0|1] [--max-retries N] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }

  core::DispatcherConfig dispatcher_config;
  dispatcher_config.piggyback = config.get_bool("piggyback", true);
  dispatcher_config.replay.max_retries =
      static_cast<int>(config.get_int("max_retries", 3));
  dispatcher_config.replay.response_timeout_s =
      config.get_double("response_timeout_s", 0.0);
  dispatcher_config.notify_threads =
      static_cast<int>(config.get_int("notify_threads", 4));
  dispatcher_config.max_tasks_per_dispatch = static_cast<std::uint32_t>(
      config.get_int("max_tasks_per_dispatch", 1));

  RealClock clock;
  core::Dispatcher dispatcher(clock, dispatcher_config);
  core::TcpDispatcherServer server(dispatcher);
  if (auto status = server.start(rpc_port, push_port); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.error().str().c_str());
    return 1;
  }
  std::printf("falkon-dispatcher up: rpc=%u notify=%u (piggyback=%s)\n",
              server.rpc_port(), server.push_port(),
              dispatcher_config.piggyback ? "on" : "off");
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  double last_report = clock.now_s();
  while (!g_stop) {
    clock.sleep_s(0.2);
    (void)dispatcher.check_replays();
    if (clock.now_s() - last_report >= 10.0) {
      last_report = clock.now_s();
      const auto status = dispatcher.status();
      std::printf("[status] executors=%u busy=%u queued=%llu completed=%llu"
                  " failed=%llu\n",
                  status.registered_executors, status.busy_executors,
                  static_cast<unsigned long long>(status.queued),
                  static_cast<unsigned long long>(status.completed),
                  static_cast<unsigned long long>(status.failed));
      std::fflush(stdout);
    }
  }
  std::printf("shutting down\n");
  server.stop();
  dispatcher.shutdown();
  return 0;
}
