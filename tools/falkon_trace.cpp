// falkon-trace: run a workload with full lifecycle tracing and export a
// Chrome trace_event JSON (open in https://ui.perfetto.dev or
// chrome://tracing) plus a metrics snapshot.
//
//   $ falkon-trace [--tasks N] [--executors N] [--task-length S]
//                  [--bundle K] [--no-piggyback] [--security]
//                  [--ring N] [--mode sim|inproc]
//                  [--out trace.json] [--metrics metrics.json]
//
// The default mode replays the workload on the calibrated discrete-event
// simulator (sim mode scales to millions of tasks); `--mode inproc` runs
// the real threaded dispatcher/executor stack instead, tracing whatever
// stages the live protocol exercises.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "common/strings.h"
#include "core/client.h"
#include "core/service.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;

int run_sim(obs::Obs& obs, std::uint64_t tasks, int executors,
            double task_length_s, int bundle, bool piggyback, bool security) {
  sim::SimFalkonConfig config;
  config.task_count = tasks;
  config.executors = executors;
  config.task_length_s = task_length_s;
  config.client_bundle = bundle;
  config.piggyback = piggyback;
  config.ws.security = security;
  config.obs = &obs;
  auto result = sim::simulate_falkon(config);
  std::printf("simulated %llu tasks on %d executors: makespan %.3f s,"
              " %.1f tasks/s\n",
              static_cast<unsigned long long>(result.completed), executors,
              result.makespan_s, result.avg_throughput());
  return result.completed == tasks ? 0 : 1;
}

int run_inproc(obs::Obs& obs, std::uint64_t tasks, int executors,
               double task_length_s) {
  RealClock clock;
  core::DispatcherConfig config;
  config.obs = &obs;
  core::InProcFalkon falkon(clock, config);
  core::ExecutorOptions options;
  options.obs = &obs;
  auto factory = [](Clock& c) -> std::unique_ptr<core::TaskEngine> {
    return std::make_unique<core::SleepEngine>(c);
  };
  if (!falkon.add_executors(executors, factory, options).ok()) {
    std::fprintf(stderr, "failed to start executors\n");
    return 1;
  }
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  if (!session.ok()) {
    std::fprintf(stderr, "failed to open session\n");
    return 1;
  }
  std::vector<TaskSpec> specs;
  specs.reserve(tasks);
  for (std::uint64_t i = 1; i <= tasks; ++i) {
    specs.push_back(make_sleep_task(TaskId{i}, task_length_s));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 600.0);
  const double elapsed = clock.now_s() - start;
  if (!results.ok()) {
    std::fprintf(stderr, "run failed: %s\n", results.error().message.c_str());
    return 1;
  }
  std::printf("ran %llu tasks on %d executors in %.3f s (%.1f tasks/s)\n",
              static_cast<unsigned long long>(tasks), executors, elapsed,
              elapsed > 0 ? static_cast<double>(tasks) / elapsed : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t tasks = 1000;
  int executors = 64;
  double task_length_s = 0.0;
  int bundle = 100;
  bool piggyback = true;
  bool security = false;
  std::size_t ring = 0;  // 0: sized automatically from the task count
  std::string mode = "sim";
  std::string out_path = "trace.json";
  std::string metrics_path = "metrics.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--tasks") {
      tasks = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--executors") {
      executors = std::atoi(next());
    } else if (arg == "--task-length") {
      task_length_s = std::atof(next());
    } else if (arg == "--bundle") {
      bundle = std::atoi(next());
    } else if (arg == "--no-piggyback") {
      piggyback = false;
    } else if (arg == "--security") {
      security = true;
    } else if (arg == "--ring") {
      ring = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tasks N] [--executors N] [--task-length S]"
                   " [--bundle K] [--no-piggyback] [--security] [--ring N]"
                   " [--mode sim|inproc] [--out trace.json]"
                   " [--metrics metrics.json]\n",
                   argv[0]);
      return 2;
    }
  }

  falkon::obs::ObsConfig obs_config;
  obs_config.tracing = true;
  // Seven spans per task, plus headroom for retries and notifications.
  obs_config.trace_capacity =
      ring != 0 ? ring : static_cast<std::size_t>(tasks) * 8 + 1024;
  falkon::obs::Obs obs(obs_config);

  int status;
  if (mode == "sim") {
    status = run_sim(obs, tasks, executors, task_length_s, bundle, piggyback,
                     security);
  } else if (mode == "inproc") {
    status = run_inproc(obs, tasks, executors, task_length_s);
  } else {
    std::fprintf(stderr, "unknown --mode %s (want sim|inproc)\n", mode.c_str());
    return 2;
  }
  if (status != 0) return status;

  const auto& tracer = obs.tracer();
  std::printf("trace: %llu spans recorded, %llu dropped (ring %zu)\n",
              static_cast<unsigned long long>(tracer.recorded()),
              static_cast<unsigned long long>(tracer.dropped()),
              tracer.capacity());
  if (auto s = falkon::obs::save_chrome_trace(tracer, out_path); !s.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", s.error().message.c_str());
    return 1;
  }
  if (auto s = falkon::obs::save_metrics_json(obs.registry(), metrics_path);
      !s.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 s.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", out_path.c_str(), metrics_path.c_str());
  std::printf("%s", falkon::obs::human_dump(obs.registry().snapshot()).c_str());
  return 0;
}
