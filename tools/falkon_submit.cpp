// falkon-submit: command-line client.
//
//   $ falkon-submit --host H --rpc-port N [--bundle K] [--timeout S]
//                   [--quiet] CMD [ARGS...]          # one task
//   $ falkon-submit --host H --rpc-port N --file tasks.txt
//                   # one task per line, run through /bin/sh -c
//
// Submits tasks to a running falkon-dispatcher, waits for the results, and
// prints exit codes and captured output.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"

int main(int argc, char** argv) {
  using namespace falkon;

  std::string host = "127.0.0.1";
  std::uint16_t rpc_port = 0;
  std::size_t bundle = 100;
  double timeout_s = 3600.0;
  bool quiet = false;
  std::string file;
  std::vector<std::string> command;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--rpc-port") {
      rpc_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--bundle") {
      bundle = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--timeout") {
      timeout_s = std::atof(next());
    } else if (arg == "--file") {
      file = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      for (int j = i; j < argc; ++j) command.emplace_back(argv[j]);
      break;
    }
  }
  if (rpc_port == 0 || (file.empty() && command.empty())) {
    std::fprintf(stderr,
                 "usage: %s --host H --rpc-port N [--bundle K] [--timeout S]"
                 " [--quiet] (CMD [ARGS...] | --file tasks.txt)\n",
                 argv[0]);
    return 2;
  }

  std::vector<TaskSpec> tasks;
  std::uint64_t next_id = 1;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      TaskSpec task;
      task.id = TaskId{next_id++};
      task.executable = "/bin/sh";
      task.args = {"-c", line};
      task.capture_output = true;
      tasks.push_back(std::move(task));
    }
  } else {
    TaskSpec task;
    task.id = TaskId{next_id++};
    task.executable = command.front();
    task.args.assign(command.begin() + 1, command.end());
    task.capture_output = true;
    tasks.push_back(std::move(task));
  }
  if (tasks.empty()) {
    std::fprintf(stderr, "no tasks to submit\n");
    return 1;
  }

  auto client = core::TcpDispatcherClient::connect(host, rpc_port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.error().str().c_str());
    return 1;
  }
  core::SessionOptions options;
  options.bundle_size = bundle;
  auto session =
      core::FalkonSession::open(*client.value(), ClientId{1}, options);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.error().str().c_str());
    return 1;
  }

  RealClock clock;
  const double start = clock.now_s();
  const std::size_t count = tasks.size();
  auto results = session.value()->run(std::move(tasks), timeout_s);
  if (!results.ok()) {
    std::fprintf(stderr, "run: %s\n", results.error().str().c_str());
    return 1;
  }
  int worst_exit = 0;
  for (const auto& result : results.value()) {
    worst_exit = std::max(worst_exit, result.exit_code);
    if (quiet) continue;
    std::printf("--- task %llu: exit=%d exec=%.3fs queue=%.3fs\n",
                static_cast<unsigned long long>(result.task_id.value),
                result.exit_code, result.exec_time_s, result.queue_time_s);
    if (!result.stdout_data.empty()) {
      std::fwrite(result.stdout_data.data(), 1, result.stdout_data.size(),
                  stdout);
    }
    if (!result.stderr_data.empty()) {
      std::fwrite(result.stderr_data.data(), 1, result.stderr_data.size(),
                  stderr);
    }
  }
  std::printf("%zu task(s) in %.3f s\n", count, clock.now_s() - start);
  return worst_exit == 0 ? 0 : 1;
}
