// falkon-wal: inspect and verify a dispatcher journal directory (docs/HA.md).
//
//   $ falkon-wal dump <dir> [--from LSN]   print every record past the
//                                          newest snapshot (or LSN)
//   $ falkon-wal verify <dir>              check snapshot CRCs and walk the
//                                          whole log; exit 1 on a torn tail
//                                          or an undecodable record
//   $ falkon-wal image <dir>               recover snapshot + replay and
//                                          print the resulting state summary
//
// Both commands are read-only: they never truncate a torn tail (that is
// Wal::open's job, done by the owning dispatcher), so they are safe to run
// against a live primary's directory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <variant>

#include "ha/journal.h"
#include "ha/state.h"
#include "ha/wal.h"

namespace {

using namespace falkon;

int usage() {
  std::fprintf(stderr,
               "usage: falkon-wal dump <dir> [--from LSN]\n"
               "       falkon-wal verify <dir>\n"
               "       falkon-wal image <dir>\n");
  return 2;
}

void print_snapshot_line(const std::string& dir) {
  if (auto snapshot = ha::load_latest_snapshot(dir)) {
    std::printf("snapshot: lsn=%llu epoch=%llu (%zu bytes)\n",
                static_cast<unsigned long long>(snapshot->lsn),
                static_cast<unsigned long long>(snapshot->epoch),
                snapshot->payload.size());
  } else {
    std::printf("snapshot: none\n");
  }
}

int cmd_dump(const std::string& dir, std::uint64_t from_lsn) {
  print_snapshot_line(dir);
  if (from_lsn == 0) {
    auto snapshot = ha::load_latest_snapshot(dir);
    from_lsn = snapshot ? snapshot->lsn + 1 : 1;
  }
  bool decode_failed = false;
  auto stats = ha::Wal::replay(
      dir, from_lsn,
      [&](std::uint64_t lsn, const std::uint8_t* payload, std::size_t size) {
        auto record = ha::decode_record(payload, size);
        if (record.ok()) {
          std::printf("%12llu  %s\n", static_cast<unsigned long long>(lsn),
                      ha::record_summary(record.value()).c_str());
        } else {
          std::printf("%12llu  <undecodable: %s>\n",
                      static_cast<unsigned long long>(lsn),
                      record.error().message.c_str());
          decode_failed = true;
        }
        return true;
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 stats.error().message.c_str());
    return 1;
  }
  std::printf("%llu records, lsn [%llu, %llu], epoch=%llu%s\n",
              static_cast<unsigned long long>(stats.value().records),
              static_cast<unsigned long long>(stats.value().first_lsn),
              static_cast<unsigned long long>(stats.value().last_lsn),
              static_cast<unsigned long long>(ha::read_log_epoch(dir)),
              stats.value().torn_tail ? ", TORN TAIL" : "");
  return decode_failed ? 1 : 0;
}

int cmd_verify(const std::string& dir) {
  print_snapshot_line(dir);
  const auto snapshot = ha::load_latest_snapshot(dir);
  std::uint64_t undecodable = 0;
  // Promotion epochs only ever climb: RecEpoch values must be strictly
  // increasing in LSN order, and any RecEpoch past the newest snapshot
  // must be above the epoch frozen into that snapshot's header. A
  // violation means two regimes wrote the same directory — split brain.
  std::uint64_t last_epoch = 0;
  std::uint64_t epoch_violations = 0;
  auto stats = ha::Wal::replay(
      dir, 1,
      [&](std::uint64_t lsn, const std::uint8_t* payload, std::size_t size) {
        auto record = ha::decode_record(payload, size);
        if (!record.ok()) {
          ++undecodable;
          return true;
        }
        if (const auto* epoch = std::get_if<ha::RecEpoch>(&record.value())) {
          if (epoch->epoch <= last_epoch ||
              (snapshot && lsn > snapshot->lsn &&
               epoch->epoch <= snapshot->epoch)) {
            std::fprintf(stderr,
                         "non-monotone epoch at lsn %llu: %llu after %llu\n",
                         static_cast<unsigned long long>(lsn),
                         static_cast<unsigned long long>(epoch->epoch),
                         static_cast<unsigned long long>(std::max(
                             last_epoch, snapshot ? snapshot->epoch : 0)));
            ++epoch_violations;
          }
          last_epoch = std::max(last_epoch, epoch->epoch);
        }
        return true;
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 stats.error().message.c_str());
    return 1;
  }
  std::printf(
      "log: %llu records, lsn [%llu, %llu], epoch=%llu, torn_tail=%s, "
      "undecodable=%llu, epoch_violations=%llu\n",
      static_cast<unsigned long long>(stats.value().records),
      static_cast<unsigned long long>(stats.value().first_lsn),
      static_cast<unsigned long long>(stats.value().last_lsn),
      static_cast<unsigned long long>(ha::read_log_epoch(dir)),
      stats.value().torn_tail ? "yes" : "no",
      static_cast<unsigned long long>(undecodable),
      static_cast<unsigned long long>(epoch_violations));
  return (stats.value().torn_tail || undecodable > 0 || epoch_violations > 0)
             ? 1
             : 0;
}

int cmd_image(const std::string& dir) {
  ha::StateMachine sm;
  std::uint64_t base_lsn = 0;
  if (auto snapshot = ha::load_latest_snapshot(dir)) {
    auto image =
        ha::decode_image(snapshot->payload.data(), snapshot->payload.size());
    if (!image.ok()) {
      std::fprintf(stderr, "snapshot undecodable: %s\n",
                   image.error().message.c_str());
      return 1;
    }
    sm.reset(image.value());
    base_lsn = snapshot->lsn;
  }
  auto stats = ha::Wal::replay(
      dir, base_lsn + 1,
      [&](std::uint64_t, const std::uint8_t* payload, std::size_t size) {
        auto record = ha::decode_record(payload, size);
        if (record.ok()) sm.apply(record.value());
        return record.ok();
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 stats.error().message.c_str());
    return 1;
  }
  const core::DispatcherImage image = sm.image();
  std::printf(
      "image @ lsn %llu: instances=%zu queue=%zu submitted=%llu "
      "completed=%llu failed=%llu retried=%llu quarantined=%llu\n",
      static_cast<unsigned long long>(
          stats.value().last_lsn ? stats.value().last_lsn : base_lsn),
      image.instances.size(), image.queue.size(),
      static_cast<unsigned long long>(image.submitted),
      static_cast<unsigned long long>(image.completed),
      static_cast<unsigned long long>(image.failed),
      static_cast<unsigned long long>(image.retried),
      static_cast<unsigned long long>(image.quarantined));
  for (const auto& instance : image.instances) {
    std::printf("  instance %llu: client=%llu last_submit_seq=%llu "
                "mailbox=%zu\n",
                static_cast<unsigned long long>(instance.id.value),
                static_cast<unsigned long long>(instance.client.value),
                static_cast<unsigned long long>(instance.last_submit_seq),
                instance.mailbox.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  std::uint64_t from_lsn = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc) {
      from_lsn = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }
  if (command == "dump") return cmd_dump(dir, from_lsn);
  if (command == "verify") return cmd_verify(dir);
  if (command == "image") return cmd_image(dir);
  return usage();
}
