// falkon-executor: standalone executor daemon.
//
//   $ falkon-executor --host H --rpc-port N --push-port N
//                     [--count K] [--engine shell|noop|sleep]
//                     [--idle-timeout S] [--bundle N] [--prefetch]
//
// Starts K executors that register with a remote dispatcher, pull work,
// run it (by default as real processes), and release themselves after the
// idle timeout (the distributed resource-release policy).
#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "core/service_tcp.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace falkon;

  std::string host = "127.0.0.1";
  std::uint16_t rpc_port = 0;
  std::uint16_t push_port = 0;
  int count = 1;
  std::string engine_name = "shell";
  core::ExecutorOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--rpc-port") {
      rpc_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--push-port") {
      push_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--count") {
      count = std::atoi(next());
    } else if (arg == "--engine") {
      engine_name = next();
    } else if (arg == "--idle-timeout") {
      options.idle_timeout_s = std::atof(next());
    } else if (arg == "--bundle") {
      options.max_bundle = static_cast<std::uint32_t>(std::atoi(next()));
      options.piggyback_tasks = options.max_bundle;
    } else if (arg == "--prefetch") {
      options.prefetch = true;
    } else if (arg == "--poll") {
      // Firewall-bypass mode: no notification channel, outbound RPC only.
      options.poll_interval_s = std::atof(next());
    } else if (arg == "--verbose") {
      Logger::instance().set_level(LogLevel::kDebug);
    } else {
      std::fprintf(stderr,
                   "usage: %s --host H --rpc-port N --push-port N [--count K]"
                   " [--engine shell|noop|sleep] [--idle-timeout S]"
                   " [--bundle N] [--prefetch] [--poll INTERVAL_S] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  if (rpc_port == 0 || push_port == 0) {
    std::fprintf(stderr, "--rpc-port and --push-port are required\n");
    return 2;
  }

  RealClock clock;
  auto make_engine = [&]() -> std::unique_ptr<core::TaskEngine> {
    if (engine_name == "noop") return std::make_unique<core::NoopEngine>();
    if (engine_name == "sleep") return std::make_unique<core::SleepEngine>(clock);
    return std::make_unique<core::ShellEngine>();
  };

  std::vector<std::unique_ptr<core::TcpExecutorHarness>> pool;
  for (int e = 0; e < count; ++e) {
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, host, rpc_port, push_port, make_engine(), options);
    if (auto status = harness->start(); !status.ok()) {
      std::fprintf(stderr, "executor %d failed to start: %s\n", e,
                   status.error().str().c_str());
      return 1;
    }
    pool.push_back(std::move(harness));
  }
  std::printf("falkon-executor: %d executor(s) registered with %s:%u"
              " (engine=%s, idle-timeout=%.0fs)\n",
              count, host.c_str(), rpc_port, engine_name.c_str(),
              options.idle_timeout_s);
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Run until killed or every executor self-released (idle timeout).
  for (;;) {
    if (g_stop) break;
    bool any_running = false;
    for (const auto& harness : pool) {
      if (harness->runtime().running()) any_running = true;
    }
    if (!any_running) {
      std::printf("all executors released (idle timeout); exiting\n");
      break;
    }
    clock.sleep_s(0.2);
  }
  std::uint64_t executed = 0;
  for (auto& harness : pool) {
    harness->stop();
    executed += harness->runtime().stats().tasks_executed;
  }
  std::printf("executed %llu tasks\n",
              static_cast<unsigned long long>(executed));
  return 0;
}
