# Empty dependencies file for test_iomodel.
# This may be replaced when dependencies are built.
