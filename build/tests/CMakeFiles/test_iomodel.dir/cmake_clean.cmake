file(REMOVE_RECURSE
  "CMakeFiles/test_iomodel.dir/test_iomodel.cpp.o"
  "CMakeFiles/test_iomodel.dir/test_iomodel.cpp.o.d"
  "test_iomodel"
  "test_iomodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iomodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
