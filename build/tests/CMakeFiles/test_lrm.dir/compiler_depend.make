# Empty compiler generated dependencies file for test_lrm.
# This may be replaced when dependencies are built.
