file(REMOVE_RECURSE
  "CMakeFiles/test_lrm.dir/test_lrm.cpp.o"
  "CMakeFiles/test_lrm.dir/test_lrm.cpp.o.d"
  "test_lrm"
  "test_lrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
