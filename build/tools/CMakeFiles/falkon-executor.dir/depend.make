# Empty dependencies file for falkon-executor.
# This may be replaced when dependencies are built.
