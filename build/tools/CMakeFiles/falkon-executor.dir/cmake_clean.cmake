file(REMOVE_RECURSE
  "CMakeFiles/falkon-executor.dir/falkon_executor.cpp.o"
  "CMakeFiles/falkon-executor.dir/falkon_executor.cpp.o.d"
  "falkon-executor"
  "falkon-executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon-executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
