file(REMOVE_RECURSE
  "CMakeFiles/falkon-submit.dir/falkon_submit.cpp.o"
  "CMakeFiles/falkon-submit.dir/falkon_submit.cpp.o.d"
  "falkon-submit"
  "falkon-submit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon-submit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
