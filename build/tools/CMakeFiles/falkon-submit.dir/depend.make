# Empty dependencies file for falkon-submit.
# This may be replaced when dependencies are built.
