# Empty compiler generated dependencies file for falkon-dispatcher.
# This may be replaced when dependencies are built.
