file(REMOVE_RECURSE
  "CMakeFiles/falkon-dispatcher.dir/falkon_dispatcher.cpp.o"
  "CMakeFiles/falkon-dispatcher.dir/falkon_dispatcher.cpp.o.d"
  "falkon-dispatcher"
  "falkon-dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon-dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
