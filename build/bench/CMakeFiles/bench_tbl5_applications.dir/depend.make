# Empty dependencies file for bench_tbl5_applications.
# This may be replaced when dependencies are built.
