file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl5_applications.dir/bench_tbl5_applications.cpp.o"
  "CMakeFiles/bench_tbl5_applications.dir/bench_tbl5_applications.cpp.o.d"
  "bench_tbl5_applications"
  "bench_tbl5_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl5_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
