# Empty dependencies file for bench_fig8_2m_tasks.
# This may be replaced when dependencies are built.
