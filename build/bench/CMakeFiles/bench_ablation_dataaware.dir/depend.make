# Empty dependencies file for bench_ablation_dataaware.
# This may be replaced when dependencies are built.
