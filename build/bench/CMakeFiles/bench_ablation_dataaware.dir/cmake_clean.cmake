file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dataaware.dir/bench_ablation_dataaware.cpp.o"
  "CMakeFiles/bench_ablation_dataaware.dir/bench_ablation_dataaware.cpp.o.d"
  "bench_ablation_dataaware"
  "bench_ablation_dataaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dataaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
