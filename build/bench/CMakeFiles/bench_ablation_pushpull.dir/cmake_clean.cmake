file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pushpull.dir/bench_ablation_pushpull.cpp.o"
  "CMakeFiles/bench_ablation_pushpull.dir/bench_ablation_pushpull.cpp.o.d"
  "bench_ablation_pushpull"
  "bench_ablation_pushpull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pushpull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
