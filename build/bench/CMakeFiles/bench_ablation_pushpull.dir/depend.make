# Empty dependencies file for bench_ablation_pushpull.
# This may be replaced when dependencies are built.
