# Empty dependencies file for bench_fig5_bundling.
# This may be replaced when dependencies are built.
