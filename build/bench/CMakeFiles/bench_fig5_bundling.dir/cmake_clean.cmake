file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bundling.dir/bench_fig5_bundling.cpp.o"
  "CMakeFiles/bench_fig5_bundling.dir/bench_fig5_bundling.cpp.o.d"
  "bench_fig5_bundling"
  "bench_fig5_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
