file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_54k_executors.dir/bench_fig9_54k_executors.cpp.o"
  "CMakeFiles/bench_fig9_54k_executors.dir/bench_fig9_54k_executors.cpp.o.d"
  "bench_fig9_54k_executors"
  "bench_fig9_54k_executors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_54k_executors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
