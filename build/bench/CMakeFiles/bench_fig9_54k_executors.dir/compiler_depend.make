# Empty compiler generated dependencies file for bench_fig9_54k_executors.
# This may be replaced when dependencies are built.
