# Empty compiler generated dependencies file for bench_tbl3_provisioning.
# This may be replaced when dependencies are built.
