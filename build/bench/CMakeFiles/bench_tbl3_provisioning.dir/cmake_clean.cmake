file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl3_provisioning.dir/bench_tbl3_provisioning.cpp.o"
  "CMakeFiles/bench_tbl3_provisioning.dir/bench_tbl3_provisioning.cpp.o.d"
  "bench_tbl3_provisioning"
  "bench_tbl3_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl3_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
