
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_policies.cpp" "bench/CMakeFiles/bench_ablation_policies.dir/bench_ablation_policies.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_policies.dir/bench_ablation_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/falkon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/falkon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/falkon_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/falkon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/falkon_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/falkon_iomodel.dir/DependInfo.cmake"
  "/root/repo/build/src/lrm/CMakeFiles/falkon_lrm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/falkon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
