file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fmri.dir/bench_fig14_fmri.cpp.o"
  "CMakeFiles/bench_fig14_fmri.dir/bench_fig14_fmri.cpp.o.d"
  "bench_fig14_fmri"
  "bench_fig14_fmri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fmri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
