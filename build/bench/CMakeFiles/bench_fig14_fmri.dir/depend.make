# Empty dependencies file for bench_fig14_fmri.
# This may be replaced when dependencies are built.
