file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl2_systems.dir/bench_tbl2_systems.cpp.o"
  "CMakeFiles/bench_tbl2_systems.dir/bench_tbl2_systems.cpp.o.d"
  "bench_tbl2_systems"
  "bench_tbl2_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl2_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
