# Empty compiler generated dependencies file for bench_tbl2_systems.
# This may be replaced when dependencies are built.
