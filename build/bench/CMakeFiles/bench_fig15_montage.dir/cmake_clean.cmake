file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_montage.dir/bench_fig15_montage.cpp.o"
  "CMakeFiles/bench_fig15_montage.dir/bench_fig15_montage.cpp.o.d"
  "bench_fig15_montage"
  "bench_fig15_montage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_montage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
