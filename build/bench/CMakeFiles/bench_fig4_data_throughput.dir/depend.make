# Empty dependencies file for bench_fig4_data_throughput.
# This may be replaced when dependencies are built.
