# Empty dependencies file for bench_fig3_throughput.
# This may be replaced when dependencies are built.
