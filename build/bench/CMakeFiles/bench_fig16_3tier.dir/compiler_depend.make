# Empty compiler generated dependencies file for bench_fig16_3tier.
# This may be replaced when dependencies are built.
