file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_3tier.dir/bench_fig16_3tier.cpp.o"
  "CMakeFiles/bench_fig16_3tier.dir/bench_fig16_3tier.cpp.o.d"
  "bench_fig16_3tier"
  "bench_fig16_3tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_3tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
