# Empty compiler generated dependencies file for falkon_net.
# This may be replaced when dependencies are built.
