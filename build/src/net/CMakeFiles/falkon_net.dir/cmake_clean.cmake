file(REMOVE_RECURSE
  "CMakeFiles/falkon_net.dir/rpc.cpp.o"
  "CMakeFiles/falkon_net.dir/rpc.cpp.o.d"
  "CMakeFiles/falkon_net.dir/socket.cpp.o"
  "CMakeFiles/falkon_net.dir/socket.cpp.o.d"
  "libfalkon_net.a"
  "libfalkon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
