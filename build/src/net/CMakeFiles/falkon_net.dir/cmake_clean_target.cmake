file(REMOVE_RECURSE
  "libfalkon_net.a"
)
