# Empty compiler generated dependencies file for falkon_core.
# This may be replaced when dependencies are built.
