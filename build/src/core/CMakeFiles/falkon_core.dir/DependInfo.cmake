
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/falkon_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/client.cpp.o.d"
  "/root/repo/src/core/dispatcher.cpp" "src/core/CMakeFiles/falkon_core.dir/dispatcher.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/dispatcher.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/core/CMakeFiles/falkon_core.dir/executor.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/executor.cpp.o.d"
  "/root/repo/src/core/forwarder.cpp" "src/core/CMakeFiles/falkon_core.dir/forwarder.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/forwarder.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/falkon_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/provisioner.cpp" "src/core/CMakeFiles/falkon_core.dir/provisioner.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/provisioner.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/core/CMakeFiles/falkon_core.dir/service.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/service.cpp.o.d"
  "/root/repo/src/core/service_tcp.cpp" "src/core/CMakeFiles/falkon_core.dir/service_tcp.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/service_tcp.cpp.o.d"
  "/root/repo/src/core/task_engine.cpp" "src/core/CMakeFiles/falkon_core.dir/task_engine.cpp.o" "gcc" "src/core/CMakeFiles/falkon_core.dir/task_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/falkon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/falkon_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/falkon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lrm/CMakeFiles/falkon_lrm.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/falkon_iomodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
