file(REMOVE_RECURSE
  "CMakeFiles/falkon_core.dir/client.cpp.o"
  "CMakeFiles/falkon_core.dir/client.cpp.o.d"
  "CMakeFiles/falkon_core.dir/dispatcher.cpp.o"
  "CMakeFiles/falkon_core.dir/dispatcher.cpp.o.d"
  "CMakeFiles/falkon_core.dir/executor.cpp.o"
  "CMakeFiles/falkon_core.dir/executor.cpp.o.d"
  "CMakeFiles/falkon_core.dir/forwarder.cpp.o"
  "CMakeFiles/falkon_core.dir/forwarder.cpp.o.d"
  "CMakeFiles/falkon_core.dir/policies.cpp.o"
  "CMakeFiles/falkon_core.dir/policies.cpp.o.d"
  "CMakeFiles/falkon_core.dir/provisioner.cpp.o"
  "CMakeFiles/falkon_core.dir/provisioner.cpp.o.d"
  "CMakeFiles/falkon_core.dir/service.cpp.o"
  "CMakeFiles/falkon_core.dir/service.cpp.o.d"
  "CMakeFiles/falkon_core.dir/service_tcp.cpp.o"
  "CMakeFiles/falkon_core.dir/service_tcp.cpp.o.d"
  "CMakeFiles/falkon_core.dir/task_engine.cpp.o"
  "CMakeFiles/falkon_core.dir/task_engine.cpp.o.d"
  "libfalkon_core.a"
  "libfalkon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
