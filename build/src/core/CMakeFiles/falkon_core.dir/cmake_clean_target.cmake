file(REMOVE_RECURSE
  "libfalkon_core.a"
)
