file(REMOVE_RECURSE
  "CMakeFiles/falkon_wire.dir/framing.cpp.o"
  "CMakeFiles/falkon_wire.dir/framing.cpp.o.d"
  "CMakeFiles/falkon_wire.dir/message.cpp.o"
  "CMakeFiles/falkon_wire.dir/message.cpp.o.d"
  "libfalkon_wire.a"
  "libfalkon_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
