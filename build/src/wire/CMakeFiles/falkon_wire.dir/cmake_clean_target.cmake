file(REMOVE_RECURSE
  "libfalkon_wire.a"
)
