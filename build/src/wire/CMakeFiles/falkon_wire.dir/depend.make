# Empty dependencies file for falkon_wire.
# This may be replaced when dependencies are built.
