
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/dag.cpp" "src/workflow/CMakeFiles/falkon_workflow.dir/dag.cpp.o" "gcc" "src/workflow/CMakeFiles/falkon_workflow.dir/dag.cpp.o.d"
  "/root/repo/src/workflow/engine.cpp" "src/workflow/CMakeFiles/falkon_workflow.dir/engine.cpp.o" "gcc" "src/workflow/CMakeFiles/falkon_workflow.dir/engine.cpp.o.d"
  "/root/repo/src/workflow/provider.cpp" "src/workflow/CMakeFiles/falkon_workflow.dir/provider.cpp.o" "gcc" "src/workflow/CMakeFiles/falkon_workflow.dir/provider.cpp.o.d"
  "/root/repo/src/workflow/workloads.cpp" "src/workflow/CMakeFiles/falkon_workflow.dir/workloads.cpp.o" "gcc" "src/workflow/CMakeFiles/falkon_workflow.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/falkon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lrm/CMakeFiles/falkon_lrm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/falkon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/falkon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/falkon_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/falkon_iomodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
