file(REMOVE_RECURSE
  "CMakeFiles/falkon_workflow.dir/dag.cpp.o"
  "CMakeFiles/falkon_workflow.dir/dag.cpp.o.d"
  "CMakeFiles/falkon_workflow.dir/engine.cpp.o"
  "CMakeFiles/falkon_workflow.dir/engine.cpp.o.d"
  "CMakeFiles/falkon_workflow.dir/provider.cpp.o"
  "CMakeFiles/falkon_workflow.dir/provider.cpp.o.d"
  "CMakeFiles/falkon_workflow.dir/workloads.cpp.o"
  "CMakeFiles/falkon_workflow.dir/workloads.cpp.o.d"
  "libfalkon_workflow.a"
  "libfalkon_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
