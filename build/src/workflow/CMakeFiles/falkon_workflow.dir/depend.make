# Empty dependencies file for falkon_workflow.
# This may be replaced when dependencies are built.
