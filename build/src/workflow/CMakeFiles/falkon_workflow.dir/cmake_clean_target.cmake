file(REMOVE_RECURSE
  "libfalkon_workflow.a"
)
