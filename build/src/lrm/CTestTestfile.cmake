# CMake generated Testfile for 
# Source directory: /root/repo/src/lrm
# Build directory: /root/repo/build/src/lrm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
