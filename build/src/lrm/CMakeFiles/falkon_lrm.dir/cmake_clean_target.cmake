file(REMOVE_RECURSE
  "libfalkon_lrm.a"
)
