file(REMOVE_RECURSE
  "CMakeFiles/falkon_lrm.dir/batch_scheduler.cpp.o"
  "CMakeFiles/falkon_lrm.dir/batch_scheduler.cpp.o.d"
  "CMakeFiles/falkon_lrm.dir/gram.cpp.o"
  "CMakeFiles/falkon_lrm.dir/gram.cpp.o.d"
  "libfalkon_lrm.a"
  "libfalkon_lrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_lrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
