# Empty compiler generated dependencies file for falkon_lrm.
# This may be replaced when dependencies are built.
