# Empty dependencies file for falkon_sim.
# This may be replaced when dependencies are built.
