
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/baselines.cpp" "src/sim/CMakeFiles/falkon_sim.dir/baselines.cpp.o" "gcc" "src/sim/CMakeFiles/falkon_sim.dir/baselines.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/falkon_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/falkon_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/sim_falkon.cpp" "src/sim/CMakeFiles/falkon_sim.dir/sim_falkon.cpp.o" "gcc" "src/sim/CMakeFiles/falkon_sim.dir/sim_falkon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/falkon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/falkon_iomodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
