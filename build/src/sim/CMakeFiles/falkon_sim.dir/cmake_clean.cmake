file(REMOVE_RECURSE
  "CMakeFiles/falkon_sim.dir/baselines.cpp.o"
  "CMakeFiles/falkon_sim.dir/baselines.cpp.o.d"
  "CMakeFiles/falkon_sim.dir/event_queue.cpp.o"
  "CMakeFiles/falkon_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/falkon_sim.dir/sim_falkon.cpp.o"
  "CMakeFiles/falkon_sim.dir/sim_falkon.cpp.o.d"
  "libfalkon_sim.a"
  "libfalkon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
