file(REMOVE_RECURSE
  "libfalkon_sim.a"
)
