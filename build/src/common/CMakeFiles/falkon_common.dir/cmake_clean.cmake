file(REMOVE_RECURSE
  "CMakeFiles/falkon_common.dir/clock.cpp.o"
  "CMakeFiles/falkon_common.dir/clock.cpp.o.d"
  "CMakeFiles/falkon_common.dir/config.cpp.o"
  "CMakeFiles/falkon_common.dir/config.cpp.o.d"
  "CMakeFiles/falkon_common.dir/logging.cpp.o"
  "CMakeFiles/falkon_common.dir/logging.cpp.o.d"
  "CMakeFiles/falkon_common.dir/result.cpp.o"
  "CMakeFiles/falkon_common.dir/result.cpp.o.d"
  "CMakeFiles/falkon_common.dir/stats.cpp.o"
  "CMakeFiles/falkon_common.dir/stats.cpp.o.d"
  "CMakeFiles/falkon_common.dir/strings.cpp.o"
  "CMakeFiles/falkon_common.dir/strings.cpp.o.d"
  "CMakeFiles/falkon_common.dir/task.cpp.o"
  "CMakeFiles/falkon_common.dir/task.cpp.o.d"
  "CMakeFiles/falkon_common.dir/thread_pool.cpp.o"
  "CMakeFiles/falkon_common.dir/thread_pool.cpp.o.d"
  "libfalkon_common.a"
  "libfalkon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
