file(REMOVE_RECURSE
  "libfalkon_common.a"
)
