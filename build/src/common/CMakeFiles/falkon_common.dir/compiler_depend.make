# Empty compiler generated dependencies file for falkon_common.
# This may be replaced when dependencies are built.
