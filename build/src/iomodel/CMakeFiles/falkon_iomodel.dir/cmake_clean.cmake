file(REMOVE_RECURSE
  "CMakeFiles/falkon_iomodel.dir/data_cache.cpp.o"
  "CMakeFiles/falkon_iomodel.dir/data_cache.cpp.o.d"
  "CMakeFiles/falkon_iomodel.dir/io_model.cpp.o"
  "CMakeFiles/falkon_iomodel.dir/io_model.cpp.o.d"
  "libfalkon_iomodel.a"
  "libfalkon_iomodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falkon_iomodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
