file(REMOVE_RECURSE
  "libfalkon_iomodel.a"
)
