# Empty compiler generated dependencies file for falkon_iomodel.
# This may be replaced when dependencies are built.
