file(REMOVE_RECURSE
  "CMakeFiles/fmri_pipeline.dir/fmri_pipeline.cpp.o"
  "CMakeFiles/fmri_pipeline.dir/fmri_pipeline.cpp.o.d"
  "fmri_pipeline"
  "fmri_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmri_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
