# Empty dependencies file for fmri_pipeline.
# This may be replaced when dependencies are built.
