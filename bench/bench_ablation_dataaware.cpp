// Ablation: data-aware dispatch + executor caching vs next-available
// (paper section 6 future work, implemented here).
//
// Workload: tasks repeatedly read a working set of shared-filesystem
// objects. With next-available dispatch, an object is re-fetched from GPFS
// whenever the task lands on an executor that has not seen it. With
// data-aware dispatch, the dispatcher routes tasks to executors whose local
// cache already holds the input, so most reads hit local disk.
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/data_plane.h"
#include "core/policies.h"
#include "core/service.h"
#include "core/service_tcp.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

struct Outcome {
  double makespan_s{0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
};

Outcome run(bool data_aware, int executors, int objects, int tasks) {
  ScaledClock clock(2000.0);
  core::DispatcherConfig dispatcher_config;
  std::unique_ptr<core::DispatchPolicy> policy;
  if (data_aware) policy = std::make_unique<core::DataAwarePolicy>();
  core::InProcFalkon falkon(clock, dispatcher_config, std::move(policy));

  iomodel::IoModel model;  // paper-calibrated GPFS/local constants
  std::vector<core::DataStagingEngine*> engines;
  auto factory = [&](Clock& c) {
    auto engine = std::make_unique<core::DataStagingEngine>(
        c, model, /*concurrency=*/executors, /*cache=*/4ULL << 30);
    engines.push_back(engine.get());
    return engine;
  };
  if (!falkon.add_executors(executors, factory, core::ExecutorOptions{}).ok()) {
    return {};
  }

  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  if (!session.ok()) return {};

  // Zipf-ish access over a working set of 100 MB GPFS objects.
  Rng rng(42);
  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    const auto object = rng.uniform_int(0, static_cast<std::uint64_t>(objects - 1));
    TaskSpec task = make_data_task(TaskId{static_cast<std::uint64_t>(i)},
                                   /*compute_s=*/1.0, DataLocation::kSharedFs,
                                   IoMode::kRead, 100ULL << 20, 0);
    task.data_object = "object-" + std::to_string(object);
    specs.push_back(std::move(task));
  }

  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 1e7);
  Outcome outcome;
  if (!results.ok()) return outcome;
  outcome.makespan_s = clock.now_s() - start;
  for (auto* engine : engines) {
    outcome.cache_hits += engine->cache_hits();
    outcome.cache_misses += engine->cache_misses();
  }
  return outcome;
}

// ---- real-socket series (docs/DATA.md) ----
//
// The same ablation over loopback TCP with the real data plane: digests on
// registration/heartbeats, good-cache-compute routing in the dispatcher,
// and peer-to-peer kDataFetch between executors. Per-executor capacity
// holds exactly its partition of the working set, so next-available must
// keep re-staging (P2P off the stamped holder, churning its LRU) while
// data-aware routing leaves each partition in place.
struct TcpOutcome {
  double tasks_per_s{0.0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t p2p_fetches{0};
};

TcpOutcome run_tcp(bool data_aware, int executors, int objects, int tasks) {
  constexpr std::uint64_t kObjectBytes = 64ULL << 10;
  RealClock clock;
  core::DispatcherConfig dconfig;
  std::unique_ptr<core::DispatchPolicy> policy;
  if (data_aware) {
    dconfig.max_locality_wait_s = 0.25;
    policy = std::make_unique<core::GoodCacheComputePolicy>();
  }
  core::Dispatcher dispatcher(clock, dconfig, std::move(policy));
  core::TcpDispatcherServer server(dispatcher, nullptr);
  if (!server.start().ok()) return {};

  iomodel::IoModel model;
  struct Slot {
    std::unique_ptr<core::DataPlane> plane;
    core::P2pDataEngine* engine{nullptr};  // owned by the harness
    std::unique_ptr<core::TcpExecutorHarness> harness;
  };
  const int per_executor = (objects + executors - 1) / executors;
  std::vector<Slot> fleet(static_cast<std::size_t>(executors));
  for (int e = 0; e < executors; ++e) {
    auto& cell = fleet[static_cast<std::size_t>(e)];
    core::DataPlaneOptions popts;
    popts.cache_capacity_bytes =
        static_cast<std::uint64_t>(per_executor) * kObjectBytes + 1;
    cell.plane = std::make_unique<core::DataPlane>(popts);
    for (int o = e; o < objects; o += executors) {
      cell.plane->insert("object-" + std::to_string(o), kObjectBytes);
    }
    auto engine = std::make_unique<core::P2pDataEngine>(
        clock, model, executors, *cell.plane);
    cell.engine = engine.get();
    core::ExecutorOptions eopts;
    eopts.node_id = NodeId{static_cast<std::uint64_t>(e + 1)};
    eopts.host = "127.0.0.1";  // the socket layer is numeric-IPv4 only
    eopts.data = cell.plane.get();
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::move(engine), eopts);
    if (!harness->start().ok()) return {};
    cell.harness = std::move(harness);
  }

  auto client = core::TcpDispatcherClient::connect("127.0.0.1",
                                                   server.rpc_port());
  if (!client.ok()) return {};
  auto session = core::FalkonSession::open(*client.value(), ClientId{1});
  if (!session.ok()) return {};

  Rng rng(42);
  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    const auto object =
        rng.uniform_int(0, static_cast<std::uint64_t>(objects - 1));
    TaskSpec task = make_data_task(TaskId{static_cast<std::uint64_t>(i)},
                                   /*compute_s=*/0.0, DataLocation::kSharedFs,
                                   IoMode::kReadWrite, kObjectBytes,
                                   kObjectBytes);
    task.data_object = "object-" + std::to_string(object);
    task.capture_output = false;
    specs.push_back(std::move(task));
  }

  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 240.0);
  const double elapsed = clock.now_s() - start;

  TcpOutcome outcome;
  if (results.ok() && elapsed > 0) {
    outcome.tasks_per_s = static_cast<double>(tasks) / elapsed;
  }
  for (auto& cell : fleet) {
    outcome.cache_hits += cell.plane->cache_hits();
    outcome.cache_misses += cell.plane->cache_misses();
    outcome.p2p_fetches += cell.engine->p2p_fetches();
    cell.harness.reset();
  }
  dispatcher.shutdown();
  server.stop();
  return outcome;
}

}  // namespace

int main() {
  title("Ablation: data-aware dispatch vs next-available (section 6)");
  note("workload: 600 tasks reading 100 MB GPFS objects (working set of"
       " 32 objects), 16 executors with 4 GB local caches");

  Table table({"dispatch policy", "makespan (model s)", "cache hit rate"});
  const auto baseline = run(false, 16, 32, 600);
  const auto aware = run(true, 16, 32, 600);
  auto hit_rate = [](const Outcome& o) {
    const auto total = o.cache_hits + o.cache_misses;
    return total ? 100.0 * static_cast<double>(o.cache_hits) /
                       static_cast<double>(total)
                 : 0.0;
  };
  table.row({"next-available", strf("%.0f", baseline.makespan_s),
             strf("%.0f%%", hit_rate(baseline))});
  table.row({"data-aware", strf("%.0f", aware.makespan_s),
             strf("%.0f%%", hit_rate(aware))});
  table.print();
  note(strf("data-aware speedup: %.2fx (higher locality -> local-disk reads"
            " instead of contended GPFS)",
            baseline.makespan_s / std::max(1.0, aware.makespan_s)));

  title("Real-socket series: loopback TCP, 8 executors, 64 KiB read+write");
  Table tcp({"dispatch policy", "tasks/s", "cache hit rate", "p2p fetches"});
  auto tcp_hit_rate = [](const TcpOutcome& o) {
    const auto total = o.cache_hits + o.cache_misses;
    return total ? 100.0 * static_cast<double>(o.cache_hits) /
                       static_cast<double>(total)
                 : 0.0;
  };
  const auto tcp_baseline = run_tcp(false, 8, 16, 480);
  const auto tcp_aware = run_tcp(true, 8, 16, 480);
  tcp.row({"next-available", strf("%.0f", tcp_baseline.tasks_per_s),
           strf("%.0f%%", tcp_hit_rate(tcp_baseline)),
           strf("%llu",
                static_cast<unsigned long long>(tcp_baseline.p2p_fetches))});
  tcp.row({"good-cache-compute", strf("%.0f", tcp_aware.tasks_per_s),
           strf("%.0f%%", tcp_hit_rate(tcp_aware)),
           strf("%llu",
                static_cast<unsigned long long>(tcp_aware.p2p_fetches))});
  tcp.print();
  note("next-available still diffuses data (P2P fetches off the stamped"
       " holder), but churns every LRU doing it; good-cache-compute sends"
       " the task to the data and leaves the partitions in place.");
  return 0;
}
