// Ablation: data-aware dispatch + executor caching vs next-available
// (paper section 6 future work, implemented here).
//
// Workload: tasks repeatedly read a working set of shared-filesystem
// objects. With next-available dispatch, an object is re-fetched from GPFS
// whenever the task lands on an executor that has not seen it. With
// data-aware dispatch, the dispatcher routes tasks to executors whose local
// cache already holds the input, so most reads hit local disk.
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/service.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

struct Outcome {
  double makespan_s{0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
};

Outcome run(bool data_aware, int executors, int objects, int tasks) {
  ScaledClock clock(2000.0);
  core::DispatcherConfig dispatcher_config;
  std::unique_ptr<core::DispatchPolicy> policy;
  if (data_aware) policy = std::make_unique<core::DataAwarePolicy>();
  core::InProcFalkon falkon(clock, dispatcher_config, std::move(policy));

  iomodel::IoModel model;  // paper-calibrated GPFS/local constants
  std::vector<core::DataStagingEngine*> engines;
  auto factory = [&](Clock& c) {
    auto engine = std::make_unique<core::DataStagingEngine>(
        c, model, /*concurrency=*/executors, /*cache=*/4ULL << 30);
    engines.push_back(engine.get());
    return engine;
  };
  if (!falkon.add_executors(executors, factory, core::ExecutorOptions{}).ok()) {
    return {};
  }

  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  if (!session.ok()) return {};

  // Zipf-ish access over a working set of 100 MB GPFS objects.
  Rng rng(42);
  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    const auto object = rng.uniform_int(0, static_cast<std::uint64_t>(objects - 1));
    TaskSpec task = make_data_task(TaskId{static_cast<std::uint64_t>(i)},
                                   /*compute_s=*/1.0, DataLocation::kSharedFs,
                                   IoMode::kRead, 100ULL << 20, 0);
    task.data_object = "object-" + std::to_string(object);
    specs.push_back(std::move(task));
  }

  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 1e7);
  Outcome outcome;
  if (!results.ok()) return outcome;
  outcome.makespan_s = clock.now_s() - start;
  for (auto* engine : engines) {
    outcome.cache_hits += engine->cache_hits();
    outcome.cache_misses += engine->cache_misses();
  }
  return outcome;
}

}  // namespace

int main() {
  title("Ablation: data-aware dispatch vs next-available (section 6)");
  note("workload: 600 tasks reading 100 MB GPFS objects (working set of"
       " 32 objects), 16 executors with 4 GB local caches");

  Table table({"dispatch policy", "makespan (model s)", "cache hit rate"});
  const auto baseline = run(false, 16, 32, 600);
  const auto aware = run(true, 16, 32, 600);
  auto hit_rate = [](const Outcome& o) {
    const auto total = o.cache_hits + o.cache_misses;
    return total ? 100.0 * static_cast<double>(o.cache_hits) /
                       static_cast<double>(total)
                 : 0.0;
  };
  table.row({"next-available", strf("%.0f", baseline.makespan_s),
             strf("%.0f%%", hit_rate(baseline))});
  table.row({"data-aware", strf("%.0f", aware.makespan_s),
             strf("%.0f%%", hit_rate(aware))});
  table.print();
  note(strf("data-aware speedup: %.2fx (higher locality -> local-disk reads"
            " instead of contended GPFS)",
            baseline.makespan_s / std::max(1.0, aware.makespan_s)));
  return 0;
}
