// Ablation: hybrid push/pull vs pure polling (paper section 3.3).
//
// The paper rejects a pure-pull (polling) design with a measurement: "a
// cluster with 500 Executors polling every second keeps Dispatcher CPU
// utilization at 100%". We reproduce that trade-off: dispatcher CPU load
// from polling alone as a function of executor count and poll interval,
// versus the hybrid model's load, plus the responsiveness cost of longer
// poll intervals (mean time from submit to dispatch on an idle pool).
#include "bench_util.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"
#include "sim/cost_model.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

/// Pure-pull: every executor issues a get-work WS call every interval,
/// whether or not work exists. Load = calls/s * cpu_per_call.
double polling_cpu_load(int executors, double interval_s,
                        const sim::WsCostModel& ws) {
  const double calls_per_s = executors / interval_s;
  // A poll is a full WS operation on the dispatcher (~ the get-work half
  // of the notify+get-work pair).
  const double cpu_per_call = ws.notify_getwork_cost() / 2.0;
  return calls_per_s * cpu_per_call;
}

}  // namespace

int main() {
  title("Ablation: hybrid push/pull vs pure polling (section 3.3)");

  sim::WsCostModel ws;

  Table load({"executors", "poll 1s: CPU load", "poll 5s", "poll 30s",
              "hybrid (idle): CPU load"});
  for (int executors : {50, 100, 250, 500, 1000, 5000}) {
    load.row({strf("%d", executors),
              strf("%.0f%%", 100 * polling_cpu_load(executors, 1.0, ws)),
              strf("%.0f%%", 100 * polling_cpu_load(executors, 5.0, ws)),
              strf("%.0f%%", 100 * polling_cpu_load(executors, 30.0, ws)),
              "~0%"});
  }
  load.print();
  note("paper: '500 Executors polling every second keeps Dispatcher CPU"
       " utilization at 100%'. Hybrid push/pull costs nothing while idle.");

  title("Responsiveness: submit -> first dispatch latency on an idle pool");
  Table latency({"model", "mean latency"});
  // Pure pull with interval T: a task waits on average T/2 for a poll.
  for (double interval : {1.0, 5.0, 30.0}) {
    latency.row({strf("pure pull, %.0f s interval", interval),
                 strf("%.2f s", interval / 2.0)});
  }
  latency.row({"hybrid push/pull (notification)",
               strf("%.4f s", ws.notify_getwork_cost() + 2 * ws.latency_s)});
  latency.print();
  note("scaling the poll interval to tame CPU load destroys responsiveness;"
       " notifications decouple the two — the paper's design argument.");

  title("Measured over real TCP: submit -> result latency on an idle pool");
  {
    Table real({"executor mode", "mean latency (ms)"});
    auto measure = [](double poll_interval_s) {
      RealClock clock;
      core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
      core::TcpDispatcherServer server(dispatcher);
      if (!server.start().ok()) return -1.0;
      core::ExecutorOptions options;
      options.poll_interval_s = poll_interval_s;
      core::TcpExecutorHarness executor(
          clock, "127.0.0.1", server.rpc_port(), server.push_port(),
          std::make_unique<core::NoopEngine>(), options);
      if (!executor.start().ok()) return -1.0;
      auto client =
          core::TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
      if (!client.ok()) return -1.0;
      auto session = core::FalkonSession::open(*client.value(), ClientId{1});
      if (!session.ok()) return -1.0;
      // 20 single tasks, each submitted against an idle executor; pause
      // between them so every dispatch starts from the waiting state.
      double total = 0.0;
      for (int i = 1; i <= 20; ++i) {
        clock.sleep_s(0.03);
        std::vector<TaskSpec> one;
        one.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
        const double start = clock.now_s();
        auto results = session.value()->run(std::move(one), 10.0);
        if (!results.ok()) return -1.0;
        total += clock.now_s() - start;
      }
      executor.stop();
      server.stop();
      return total / 20.0 * 1e3;
    };
    real.row({"hybrid push/pull", strf("%.2f", measure(0.0))});
    real.row({"polling every 20 ms", strf("%.2f", measure(0.02))});
    real.row({"polling every 100 ms", strf("%.2f", measure(0.1))});
    real.print();
    note("polling latency ~= poll interval / 2 + round trip; push is bounded"
         " by the round trip alone (firewall-bypass mode trades exactly"
         " this).");
  }

  title("Throughput check: hybrid model under load (64 executors)");
  Table thr({"mode", "tasks/s"});
  sim::SimFalkonConfig config;
  config.executors = 64;
  config.task_count = 20000;
  thr.row({"hybrid push/pull + piggyback",
           strf("%.0f", sim::simulate_falkon(config).avg_throughput())});
  sim::SimFalkonConfig no_piggy = config;
  no_piggy.piggyback = false;
  thr.row({"hybrid push/pull, no piggyback",
           strf("%.0f", sim::simulate_falkon(no_piggy).avg_throughput())});
  thr.print();
  return 0;
}
