// HA benchmark gate (docs/HA.md): the numbers scripts/bench.sh compares
// against bench/baselines/BENCH_ha.json.
//
//   1. WAL append throughput per fsync policy — the durability budget. The
//      group-commit point is what AsyncJournal's drain thread spends per
//      record, so it bounds dispatcher throughput with journaling on.
//   2. Fig. 3 loopback-TCP throughput at 4 executors, journal off vs
//      group-commit AsyncJournal on. The issue's acceptance bar: journaling
//      on must stay within 15% of off (the ratio gauge is gated at the
//      shared tolerance; the JSON records the measured ratio).
//   3. Client-visible failover downtime — kill the primary, time until a
//      FailoverClient status() is answered by the promoted standby on the
//      same port. Gated as an upper bound (`*_ms` gauges are
//      lower-is-better in scripts/bench.sh).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"
#include "ha/async_journal.h"
#include "ha/failover_client.h"
#include "ha/journal.h"
#include "ha/standby.h"
#include "ha/wal.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    std::snprintf(tmpl_, sizeof(tmpl_), "/tmp/falkon_bench_%s_XXXXXX", tag);
    ok_ = ::mkdtemp(tmpl_) != nullptr;
  }
  ~ScratchDir() {
    if (ok_) {
      std::error_code ec;
      std::filesystem::remove_all(tmpl_, ec);
    }
  }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::string path() const { return tmpl_; }

 private:
  char tmpl_[64];
  bool ok_{false};
};

double measure_wal_appends(ha::FsyncPolicy policy, std::uint64_t count) {
  ScratchDir dir("wal");
  if (!dir.ok()) return 0.0;
  ha::WalOptions options;
  options.dir = dir.path();
  options.fsync = policy;
  options.group_commit_interval_s = 0.005;
  auto wal = ha::Wal::open(options);
  if (!wal.ok()) return 0.0;
  const std::vector<std::uint8_t> payload(128, 0xAB);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!wal.value()->append(payload).ok()) return 0.0;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return elapsed > 0 ? static_cast<double>(count) / elapsed : 0.0;
}

/// Fig. 3 loopback-TCP throughput, optionally with a group-commit
/// AsyncJournal on the dispatcher (same shape as bench_fig3_throughput's
/// measure_tcp_cpp, plus the journal seam under test).
double measure_tcp_journaled(int executors, std::uint64_t tasks,
                             bool journal_on) {
  RealClock clock;
  ScratchDir dir("fig3j");
  if (!dir.ok()) return 0.0;
  std::unique_ptr<ha::AsyncJournal> journal;
  if (journal_on) {
    ha::Journal::Options jopts;
    jopts.dir = dir.path();
    jopts.fsync = ha::FsyncPolicy::kGroupCommit;
    auto opened = ha::Journal::open(jopts);
    if (!opened.ok()) return 0.0;
    journal = std::make_unique<ha::AsyncJournal>(std::move(opened.value()));
  }
  core::DispatcherConfig config;
  config.max_adaptive_bundle = 256;
  config.journal = journal.get();
  core::Dispatcher dispatcher(clock, config);
  core::TcpDispatcherServer server(dispatcher);
  if (!server.start().ok()) return 0.0;
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> harnesses;
  for (int e = 0; e < executors; ++e) {
    core::ExecutorOptions options;
    options.adaptive_bundle = true;
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<core::NoopEngine>(), options);
    if (!harness->start().ok()) return 0.0;
    harnesses.push_back(std::move(harness));
  }
  auto client =
      core::TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
  if (!client.ok()) return 0.0;
  core::SessionOptions session_options;
  session_options.bundle_size = 5000;
  auto session =
      core::FalkonSession::open(*client.value(), ClientId{1}, session_options);
  if (!session.ok()) return 0.0;
  std::vector<TaskSpec> specs;
  for (std::uint64_t i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{i}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 120.0);
  const double elapsed = clock.now_s() - start;
  harnesses.clear();
  server.stop();
  dispatcher.shutdown();
  if (!results.ok() || elapsed <= 0) return 0.0;
  return static_cast<double>(tasks) / elapsed;
}

/// Client-visible outage: kill a journaled primary with a warm standby on
/// its log directory, time until FailoverClient::status() is answered by
/// the promoted standby (same probe as bench_micro's BM_HaFailoverDowntime).
double measure_failover_downtime_s() {
  ScratchDir primary_dir("ha_p");
  ScratchDir standby_dir("ha_s");
  if (!primary_dir.ok() || !standby_dir.ok()) return -1.0;
  RealClock clock;

  ha::Journal::Options jopts;
  jopts.dir = primary_dir.path();
  auto journal = ha::Journal::open(jopts);
  if (!journal.ok()) return -1.0;
  core::DispatcherConfig config;
  config.journal = journal.value().get();
  auto dispatcher = std::make_unique<core::Dispatcher>(clock, config);
  auto server = std::make_unique<core::TcpDispatcherServer>(*dispatcher);
  if (!server->start().ok()) return -1.0;
  server->set_replication_source(journal.value().get());

  ha::StandbyOptions sopts;
  sopts.primary_rpc_port = server->rpc_port();
  sopts.takeover_rpc_port = server->rpc_port();
  sopts.takeover_push_port = server->push_port();
  sopts.shared_log_dir = primary_dir.path();
  sopts.standby_dir = standby_dir.path();
  sopts.poll_interval_s = 0.01;
  sopts.failover_after_s = 0.2;
  ha::Standby standby(clock, sopts);
  if (!standby.start().ok()) return -1.0;

  ha::FailoverClientOptions copts;
  copts.rpc_port = server->rpc_port();
  ha::FailoverClient client(copts);
  auto instance = client.create_instance(ClientId{1});
  if (!instance.ok()) return -1.0;
  std::vector<TaskSpec> tasks;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    tasks.push_back(make_noop_task(TaskId{i}));
  }
  if (!client.submit(instance.value(), std::move(tasks)).ok()) return -1.0;
  const auto catchup_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (standby.applied_lsn() < journal.value()->last_lsn() &&
         std::chrono::steady_clock::now() < catchup_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const auto t0 = std::chrono::steady_clock::now();
  server->stop();
  server.reset();
  dispatcher->shutdown();
  dispatcher.reset();
  journal.value().reset();
  if (!client.status().ok()) return -1.0;
  const double downtime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  standby.stop();
  return downtime;
}

}  // namespace

int main() {
  obs::Obs obs;

  title("WAL append throughput per fsync policy (128-byte records)");
  Table wal({"fsync policy", "appends/s"});
  struct PolicyPoint {
    ha::FsyncPolicy policy;
    std::uint64_t count;
  };
  const PolicyPoint policies[] = {
      {ha::FsyncPolicy::kNone, 200000},
      {ha::FsyncPolicy::kEveryRecord, 2000},
      {ha::FsyncPolicy::kGroupCommit, 200000},
  };
  for (const auto& point : policies) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best, measure_wal_appends(point.policy, point.count));
    }
    obs.registry()
        .gauge("bench.micro.wal.appends_per_s",
               {{"fsync", ha::fsync_policy_name(point.policy)}})
        .set(best);
    wal.row({ha::fsync_policy_name(point.policy), strf("%.0f", best)});
  }
  wal.print();

  title("Fig. 3 TCP throughput, 4 executors: journal off vs group-commit on");
  // Interleave repetitions so a machine-wide slow phase hits both columns,
  // not just one — the gated number is the on/off ratio.
  double off_best = 0.0;
  double on_best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    off_best = std::max(off_best, measure_tcp_journaled(4, 100000, false));
    on_best = std::max(on_best, measure_tcp_journaled(4, 100000, true));
  }
  const double ratio = off_best > 0 ? on_best / off_best : 0.0;
  obs.registry()
      .gauge("bench.ha.fig3.tcp_tasks_per_s", {{"journal", "off"}})
      .set(off_best);
  obs.registry()
      .gauge("bench.ha.fig3.tcp_tasks_per_s", {{"journal", "group_commit"}})
      .set(on_best);
  obs.registry().gauge("bench.ha.fig3.journal_on_off_ratio").set(ratio);
  Table fig3({"journal", "tasks/s"});
  fig3.row({"off", strf("%.0f", off_best)});
  fig3.row({"group-commit (AsyncJournal)", strf("%.0f", on_best)});
  fig3.print();
  note(strf("journal-on/off ratio: %.3f (issue bar: >= 0.85)", ratio));

  title("Failover downtime (client-visible outage)");
  double best_downtime = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double downtime = measure_failover_downtime_s();
    if (downtime < 0) {
      note("failover probe failed");
      return 1;
    }
    if (best_downtime < 0 || downtime < best_downtime) {
      best_downtime = downtime;
    }
  }
  obs.registry()
      .gauge("bench.micro.ha.failover_downtime_ms")
      .set(best_downtime * 1e3);
  note(strf("downtime: %.1f ms (best of 3)", best_downtime * 1e3));

  if (obs::save_metrics_json(obs.registry(), "BENCH_ha.json").ok()) {
    note("metrics snapshot: BENCH_ha.json");
  }
  return 0;
}
