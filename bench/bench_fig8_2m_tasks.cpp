// Figure 8 / section 4.5: the 2,000,000-task endurance run.
//
// Paper setup: 2M sleep-0 tasks, 64 executors on 32 machines, dispatcher
// with a 1.5 GB Java heap. Paper results: ~112 minutes end to end, average
// throughput 298 tasks/s, raw 1-second samples between 400-500 tasks/s
// with frequent dips to 0 attributed to JVM garbage collection, queue
// growing to ~1.5M tasks while the client submits faster than the
// dispatcher drains.
#include "bench_util.h"
#include "sim/sim_falkon.h"

using namespace falkon;
using namespace falkon::bench;

int main() {
  title("Figure 8: 2M-task endurance run (64 executors)");

  sim::SimFalkonConfig config;
  config.executors = 64;
  config.task_count = 2'000'000;
  config.task_length_s = 0.0;
  config.client_bundle = 100;
  config.gc.enabled = true;  // the JVM artefact the paper observed
  const auto result = sim::simulate_falkon(config);

  note(strf("completed: %llu tasks",
            static_cast<unsigned long long>(result.completed)));
  note(strf("time to complete: %s (paper: ~112 min)",
            human_duration(result.makespan_s).c_str()));
  note(strf("average throughput: %.0f tasks/s (paper: 298)",
            result.avg_throughput()));

  // Raw-sample statistics (the light-blue dots of Figure 8).
  std::size_t zeros = 0;
  std::size_t bursts_400_500 = 0;
  std::size_t peak = 0;
  for (std::size_t i = 0; i + 1 < result.throughput_samples.size(); ++i) {
    const auto sample = result.throughput_samples[i];
    if (sample == 0) ++zeros;
    if (sample >= 400 && sample <= 550) ++bursts_400_500;
    peak = std::max(peak, sample);
  }
  note(strf("raw 1 s samples: peak %zu/s, %zu samples at 0 (GC stalls),"
            " %zu samples in the 400-550 burst band",
            peak, zeros, bursts_400_500));

  // Queue growth (the black line of Figure 8): the client outruns the
  // dispatcher, so the wait queue swells into the millions, then drains.
  double queue_peak = 0.0;
  for (double q : result.queue_series) queue_peak = std::max(queue_peak, q);
  note(strf("wait-queue peak: %.0f tasks (paper: ~1.5M)", queue_peak));

  title("queue length over time (sparkline)");
  note(sparkline(result.queue_series));

  title("raw throughput over time (sparkline)");
  std::vector<double> raw(result.throughput_samples.begin(),
                          result.throughput_samples.end());
  note(sparkline(raw));
  return 0;
}
