// Table 2 / section 4.1: measured and cited throughput for Falkon, Condor
// and PBS on sleep-0 tasks.
//
// The LRM rows are *executed* against our batch-scheduler substrate (100
// sleep-0 jobs on 64 nodes, exactly the paper's methodology), not copied:
// the presets encode scheduling-cycle and per-job overheads and the run
// measures completion time. The cited rows are reference points from the
// paper's Table 2.
#include "bench_util.h"
#include "common/clock.h"
#include "lrm/batch_scheduler.h"
#include "sim/baselines.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

double measure_lrm(const lrm::LrmConfig& config, int jobs, int nodes) {
  ManualClock clock;
  lrm::BatchScheduler scheduler(clock, config, nodes);
  int completed = 0;
  for (int i = 0; i < jobs; ++i) {
    lrm::JobSpec spec;
    spec.nodes = 1;
    spec.run_time_s = 0.0;
    spec.on_done = [&](JobId, bool) { ++completed; };
    (void)scheduler.submit(spec);
  }
  double elapsed = 0.0;
  while (completed < jobs && elapsed < 36000.0) {
    clock.advance(1.0);
    elapsed += 1.0;
    scheduler.step();
  }
  return completed == jobs ? jobs / elapsed : 0.0;
}

}  // namespace

int main() {
  title("Table 2: measured and cited throughput (tasks/s, sleep-0)");

  Table table({"system", "how", "paper", "ours"});
  table.row({"Falkon (no security)", "DES, 256 executors", "487",
             strf("%.0f", sim::falkon_throughput(256, false, 30000))});
  table.row({"Falkon (GSISecureConversation)", "DES, 256 executors", "204",
             strf("%.0f", sim::falkon_throughput(256, true, 30000))});
  table.row({"Condor (v6.7.2)", "LRM substrate, 100 jobs / 64 nodes", "0.49",
             strf("%.2f", measure_lrm(lrm::condor_v672_profile(), 100, 64))});
  table.row({"PBS (v2.1.8)", "LRM substrate, 100 jobs / 64 nodes", "0.45",
             strf("%.2f", measure_lrm(lrm::pbs_v218_profile(), 100, 64))});
  table.row({"Condor (v6.9.3)", "LRM substrate, 100 jobs / 64 nodes", "11",
             strf("%.1f", measure_lrm(lrm::condor_v693_profile(), 100, 64))});
  table.row({"Condor (v6.7.2) [15]", "cited", "2", "-"});
  table.row({"Condor (v6.8.2) [34]", "cited", "0.42", "-"});
  table.row({"Condor-J2 [15]", "cited", "22", "-"});
  table.row({"BOINC [19,20]", "cited", "93", "-"});
  table.print();

  note("shape check: Falkon beats production LRMs by ~3 orders of magnitude"
       " on per-task dispatch.");
  const double falkon = sim::falkon_throughput(256, false, 30000);
  const double pbs = measure_lrm(lrm::pbs_v218_profile(), 100, 64);
  note(strf("Falkon/PBS ratio: %.0fx (paper: ~1080x)", falkon / pbs));
  return 0;
}
