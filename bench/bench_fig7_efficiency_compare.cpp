// Figure 7 / section 4.4: efficiency for varying task lengths on 64
// processors — Falkon vs PBS (v2.1.8), Condor (v6.7.2), and the derived
// Condor (v6.9.3) curve.
//
// Paper anchors: Falkon 95% at 1 s and 99% at 8 s tasks; PBS/Condor < 1%
// at 1 s, needing ~1,200 s for 90%, ~3,600 s for 95% and ~16,000 s for
// 99%; Condor 6.9.3 (derived from 11 tasks/s) reaches 90/95/99% at
// 50/100/1,000 s.
#include "bench_util.h"
#include "sim/baselines.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

constexpr int kProcessors = 64;

double falkon_efficiency(double task_length_s) {
  sim::SimFalkonConfig config;
  config.executors = kProcessors;
  config.task_length_s = task_length_s;
  config.task_count = kProcessors * 8;
  const auto result = sim::simulate_falkon(config);
  const double ideal =
      static_cast<double>(config.task_count) * task_length_s / kProcessors;
  return ideal / result.makespan_s;
}

}  // namespace

int main() {
  title("Figure 7: efficiency vs task length on 64 processors");

  Table table({"task length", "Falkon", "Condor v6.7.2", "PBS v2.1.8",
               "Condor v6.9.3 (derived)"});
  const auto condor672 = sim::baseline_condor_v672();
  const auto pbs = sim::baseline_pbs_v218();
  const auto condor693 = sim::baseline_condor_v693();
  for (double length : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                        512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0}) {
    table.row({
        strf("%.0f s", length),
        strf("%.1f%%", falkon_efficiency(length) * 100.0),
        strf("%.1f%%",
             sim::derived_efficiency(condor672, length, kProcessors) * 100.0),
        strf("%.1f%%",
             sim::derived_efficiency(pbs, length, kProcessors) * 100.0),
        strf("%.1f%%",
             sim::derived_efficiency(condor693, length, kProcessors) * 100.0),
    });
  }
  table.print();

  note("crossover check: the LRMs need task lengths 2-3 orders of magnitude"
       " longer than Falkon to reach the same efficiency.");
  note(strf("Falkon at 1 s: %.1f%% (paper: 95%%); at 8 s: %.1f%% (paper: 99%%)",
            falkon_efficiency(1.0) * 100.0, falkon_efficiency(8.0) * 100.0));
  return 0;
}
