// Figure 6 / section 4.4: efficiency as a function of executor count and
// task length, on the DES.
//
// Paper anchors: >= 95% efficiency for 1 s tasks even at 256 executors;
// less than 1% efficiency loss going from 1 to 256 executors; speedup 242
// (1 s tasks) / 255.5 (64 s tasks) with 256 executors.
#include "bench_util.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

struct Point {
  double efficiency;
  double speedup;
};

Point run_point(int executors, double task_length_s) {
  sim::SimFalkonConfig config;
  config.executors = executors;
  config.task_length_s = task_length_s;
  config.task_count = static_cast<std::uint64_t>(executors) * 16;
  const auto result = sim::simulate_falkon(config);
  // T_1: analytic serial time (one executor pipelines dispatch + execution
  // serially) avoids an expensive second sim at large scale.
  const double per_task = task_length_s + config.ws.executor_cost() +
                          config.ws.dispatch_cost() + 2 * config.ws.latency_s;
  const double t1 = static_cast<double>(config.task_count) * per_task;
  const double speedup = t1 / result.makespan_s;
  return Point{speedup / executors, speedup};
}

}  // namespace

int main() {
  title("Figure 6: efficiency vs executor count and task length");

  const std::vector<double> lengths = {1, 2, 4, 8, 16, 32, 64};
  std::vector<std::string> headers = {"executors"};
  for (double length : lengths) headers.push_back(strf("%.0fs", length));
  Table table(headers);

  Point p256_1{0, 0};
  Point p256_64{0, 0};
  for (int executors : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    std::vector<std::string> row = {strf("%d", executors)};
    for (double length : lengths) {
      const auto point = run_point(executors, length);
      row.push_back(strf("%.1f%%", point.efficiency * 100.0));
      if (executors == 256 && length == 1) p256_1 = point;
      if (executors == 256 && length == 64) p256_64 = point;
    }
    table.row(std::move(row));
  }
  table.print();

  note(strf("speedup at 256 executors: %.1f for 1 s tasks (paper: 242),"
            " %.1f for 64 s tasks (paper: 255.5)",
            p256_1.speedup, p256_64.speedup));
  note("paper: worst case 95% efficiency (1 s tasks, 256 executors); <1%"
       " efficiency loss from 1 to 256 executors.");
  return 0;
}
