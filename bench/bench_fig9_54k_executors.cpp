// Figures 9 and 10 / section 4.5: scalability to 54,000 executors.
//
// Paper setup: 54K executors emulated as 900 processes per physical machine
// (60 machines, 4 JVMs each), 54K "sleep 480" tasks, security disabled,
// client-dispatcher bundling enabled, no piggy-backing benefit (one task
// per executor). Paper results: busy executors ramp 0 -> 54K in 408 s (the
// dispatch rate equals the submit rate), overall throughput ~60 tasks/s
// including ramp-up and ramp-down, and per-task overhead mostly below
// 200 ms with a max of 1.3 s (executors share CPUs 900-ways, inflating
// overheads).
#include "bench_util.h"
#include "common/stats.h"
#include "sim/sim_falkon.h"

using namespace falkon;
using namespace falkon::bench;

int main() {
  title("Figure 9: 54K executors, 54K x sleep-480 tasks");

  sim::SimFalkonConfig config;
  config.executors = 54000;
  config.task_count = 54000;
  config.task_length_s = 480.0;
  config.client_bundle = 100;
  // The paper's ramp is submit-rate-bound: 54K tasks in 408 s. Our client
  // submits at the same measured cadence.
  config.client_submit_rate_per_s = 54000.0 / 408.0;
  // 900 executors per machine (dual-CPU): each executor sees a heavily
  // shared CPU, which inflates the per-task handling overhead.
  config.executor_crowding = 3.0;
  config.straggler_probability = 0.004;  // a few hundred outliers in 54K
  config.straggler_factor = 12.0;
  config.record_per_task_overhead = true;
  config.sample_interval_s = 5.0;

  const auto result = sim::simulate_falkon(config);

  note(strf("all %d executors busy at t=%.0f s (paper: 408 s)",
            config.executors, result.full_busy_at_s));
  note(strf("time to complete: %s", human_duration(result.makespan_s).c_str()));
  note(strf("overall throughput incl. ramp: %.1f tasks/s (paper: ~60)",
            result.avg_throughput()));

  title("busy executors over time (sparkline; paper Figure 9 black line)");
  note(sparkline(result.busy_series));

  title("Figure 10: per-task overhead distribution");
  Histogram hist(0.0, 1.5, 30);
  double max_overhead = 0.0;
  std::size_t below_200ms = 0;
  for (float overhead : result.per_task_overhead_s) {
    hist.add(overhead);
    max_overhead = std::max(max_overhead, static_cast<double>(overhead));
    if (overhead < 0.2) ++below_200ms;
  }
  std::printf("%s", hist.ascii().c_str());
  note(strf("overheads below 200 ms: %.1f%% (paper: 'most'); max: %.0f ms"
            " (paper: 1300 ms)",
            100.0 * below_200ms / result.per_task_overhead_s.size(),
            max_overhead * 1e3));
  note(strf("median overhead: %.0f ms, p99: %.0f ms",
            hist.quantile(0.5) * 1e3, hist.quantile(0.99) * 1e3));
  return 0;
}
