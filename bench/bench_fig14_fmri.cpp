// Figure 14 / section 5.1: fMRI AIRSN workflow execution time for
// GRAM4+PBS, GRAM4+PBS with clustering (8 groups), and Falkon with 8
// executors, across problem sizes of 120..480 volumes.
//
// Paper shape: GRAM4+PBS performs worst by far (small tasks, one job
// each); clustering into 8 groups cuts runtime by >4x; Falkon improves
// further, especially on the smaller problems. The paper's headline: up to
// 90% reduction in end-to-end time vs GRAM4+PBS.
#include "bench_util.h"
#include "common/clock.h"
#include "core/service.h"
#include "workflow/engine.h"
#include "workflow/workloads.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

constexpr double kScale = 400.0;

lrm::LrmConfig pbs_profile() {
  lrm::LrmConfig config;
  config.name = "pbs+gram4";
  config.poll_interval_s = 60.0;
  config.submit_overhead_s = 0.5;
  config.dispatch_overhead_s = 20.0;
  config.cleanup_overhead_s = 10.0;
  config.start_jitter_s = 2.0;
  return config;
}

double run_batch(const workflow::WorkflowGraph& graph, int clusters) {
  ScaledClock clock(kScale);
  lrm::BatchScheduler scheduler(clock, pbs_profile(), /*nodes=*/62);
  lrm::GramConfig gram_config;
  gram_config.request_overhead_s = 2.0;
  lrm::Gram4Gateway gram(clock, scheduler, gram_config);

  std::unique_ptr<workflow::Provider> provider;
  if (clusters > 0) {
    provider = std::make_unique<workflow::ClusteredBatchProvider>(
        clock, gram, scheduler, clusters);
  } else {
    provider = std::make_unique<workflow::BatchProvider>(clock, gram, scheduler);
  }
  workflow::WorkflowEngine engine(clock, *provider);
  workflow::EngineOptions options;
  options.poll_slice_s = 2.0;
  options.deadline_s = 200000.0;
  auto stats = engine.run(graph, options);
  return stats.ok() ? stats.value().makespan_s : -1.0;
}

double run_falkon(const workflow::WorkflowGraph& graph, int executors) {
  ScaledClock clock(kScale);
  core::DispatcherConfig config;
  core::InProcFalkon falkon(clock, config);
  auto factory = [](Clock& c) { return std::make_unique<core::SleepEngine>(c); };
  if (!falkon.add_executors(executors, factory, core::ExecutorOptions{}).ok()) {
    return -1.0;
  }
  workflow::FalkonProvider provider(falkon.client(), ClientId{1});
  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.poll_slice_s = 1.0;
  options.deadline_s = 200000.0;
  auto stats = engine.run(graph, options);
  return stats.ok() ? stats.value().makespan_s : -1.0;
}

std::string cell(double seconds) {
  return seconds < 0 ? "FAILED" : strf("%.0f", seconds);
}

}  // namespace

int main() {
  title("Figure 14: fMRI AIRSN workflow execution time (seconds)");
  note("fixed 8-way resources, as in the paper (8 clusters / 8 executors)");

  Table table({"volumes", "tasks", "GRAM4+PBS", "GRAM4+PBS clustered(8)",
               "Falkon (8 executors)", "reduction vs GRAM4"});
  for (int volumes : {120, 240, 360, 480}) {
    const auto graph = workflow::make_fmri_workflow(volumes);
    const double batch = run_batch(graph, 0);
    const double clustered = run_batch(graph, 8);
    const double falkon = run_falkon(graph, 8);
    const std::string reduction =
        (batch > 0 && falkon > 0)
            ? strf("%.0f%%", (1.0 - falkon / batch) * 100.0)
            : "-";
    table.row({strf("%d", volumes), strf("%zu", graph.size()), cell(batch),
               cell(clustered), cell(falkon), reduction});
  }
  table.print();
  note("paper shape: clustering cuts GRAM4+PBS runtime >4x on 8 processors;"
       " Falkon reduces further — up to ~90% total reduction vs GRAM4+PBS.");
  return 0;
}
