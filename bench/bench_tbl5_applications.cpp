// Table 5 / section 5: the Swift application catalog, plus structural
// statistics of the workload generators this repository implements.
#include "bench_util.h"
#include "workflow/workloads.h"

using namespace falkon;
using namespace falkon::bench;

int main() {
  title("Table 5: Swift applications (all could benefit from Falkon)");
  Table table({"application", "#tasks/workflow", "#stages"});
  for (const auto& app : workflow::swift_application_catalog()) {
    table.row({app.name, app.tasks_per_workflow, app.stages});
  }
  table.print();

  title("Implemented workload generators (structural summary)");
  Table generated({"workload", "tasks", "stages", "CPU-seconds",
                   "critical path (s)", "ideal on 32 (s)"});
  auto add = [&](const char* name, const workflow::WorkflowGraph& graph) {
    generated.row({name, strf("%zu", graph.size()),
                   strf("%zu", graph.stages().size()),
                   strf("%.0f", graph.total_cpu_s()),
                   strf("%.0f", graph.critical_path_s()),
                   strf("%.0f", graph.ideal_makespan_s(32))});
  };
  add("18-stage synthetic (Fig 11)", workflow::make_synthetic_18stage());
  add("fMRI AIRSN, 120 volumes", workflow::make_fmri_workflow(120));
  add("fMRI AIRSN, 480 volumes", workflow::make_fmri_workflow(480));
  add("Montage M16 3x3 deg", workflow::make_montage_workflow());
  add("AstroPortal stacking, 100 stacks",
      workflow::make_stacking_workload(100));
  add("MolDyn, 1000 molecules", workflow::make_moldyn_workflow(1000));
  generated.print();
  return 0;
}
