// Tables 3 & 4, Figures 11-13 / section 4.6: dynamic resource provisioning
// on the 18-stage synthetic workload.
//
// Unlike the scale benchmarks, this runs the REAL threaded stack — the
// actual Dispatcher, Provisioner, Gram4Gateway, BatchScheduler and executor
// threads — under a scaled clock (1 model second = ~3 ms), so all the
// policy interactions (all-at-once acquisition, distributed idle-timeout
// release, LRM poll-cycle quantisation) are exercised for real.
//
// Configurations, as in the paper:
//   GRAM4+PBS      every task its own GRAM4 job (~100 nodes available)
//   Falkon-15/60/120/180   <=32 executors, idle-timeout release
//   Falkon-inf     32 executors held for the whole run
//
// Paper anchors (Tables 3/4): GRAM4+PBS queue 611.1 s / exec 56.5 s /
// 8.5% exec fraction, 4904 s, 30% utilization, 26% efficiency, 1000
// allocations. Falkon-15: 87.3/17.9/17%, 1754 s, 89% util, 72% eff, 11
// allocations. Falkon-inf: 43.5/17.9/29.2%, 1276 s, 44% util, 99% eff, 0.
#include "bench_util.h"
#include "common/clock.h"
#include "core/service.h"
#include "workflow/engine.h"
#include "workflow/workloads.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

constexpr double kScale = 300.0;  // model seconds per real second

lrm::LrmConfig gram4_pbs_profile() {
  // PBS with GRAM4 job-manager overheads on the node: the paper's measured
  // 56.5 s average "execution" for 17.8 s tasks implies ~40 s of per-job
  // prolog+epilog, and its 41,040 wasted CPU-seconds over 1,000 jobs
  // confirm it.
  lrm::LrmConfig config;
  config.name = "pbs+gram4";
  config.poll_interval_s = 60.0;
  config.submit_overhead_s = 0.5;
  config.dispatch_overhead_s = 25.0;
  config.cleanup_overhead_s = 15.0;
  config.start_jitter_s = 2.0;
  config.max_starts_per_cycle = 0;
  return config;
}

struct RunOutcome {
  std::string name;
  double queue_time_s{0};
  double exec_time_s{0};
  double time_to_complete_s{0};
  double utilization{0};
  double efficiency{0};
  std::uint64_t allocations{0};
  bool ok{false};
};

/// GRAM4+PBS: each task is a separate GRAM4 job.
RunOutcome run_gram4_pbs(const workflow::WorkflowGraph& graph) {
  RunOutcome outcome;
  outcome.name = "GRAM4+PBS";
  ScaledClock clock(kScale);
  lrm::BatchScheduler scheduler(clock, gram4_pbs_profile(), /*nodes=*/100);
  lrm::GramConfig gram_config;
  gram_config.request_overhead_s = 2.0;  // ~0.5 requests/s, as measured
  lrm::Gram4Gateway gram(clock, scheduler, gram_config);
  workflow::BatchProvider provider(clock, gram, scheduler);

  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.poll_slice_s = 2.0;
  options.deadline_s = 100000.0;
  auto stats = engine.run(graph, options);
  if (!stats.ok()) return outcome;

  outcome.ok = true;
  outcome.queue_time_s = stats.value().queue_time.mean();
  outcome.exec_time_s = stats.value().exec_time.mean();
  outcome.time_to_complete_s = stats.value().makespan_s;
  const auto lrm_stats = scheduler.stats();
  outcome.utilization = lrm_stats.node_seconds_allocated > 0
                            ? graph.total_cpu_s() / lrm_stats.node_seconds_allocated
                            : 0.0;
  outcome.efficiency =
      graph.staged_ideal_makespan_s(32) / outcome.time_to_complete_s;
  outcome.allocations = gram.requests_issued();
  return outcome;
}

struct FalkonRun {
  RunOutcome outcome;
  TimeSeries allocated;
  TimeSeries registered;
  TimeSeries active;
};

/// Falkon with dynamic provisioning (idle_timeout <= 0 means Falkon-inf).
FalkonRun run_falkon(const workflow::WorkflowGraph& graph, double idle_timeout_s,
                     const std::string& name) {
  FalkonRun run;
  run.outcome.name = name;
  ScaledClock clock(kScale);

  core::FalkonClusterConfig config;
  config.lrm = gram4_pbs_profile();
  // Falkon allocations start plain executors, not GRAM4 job managers:
  // node prolog is JVM startup + registration (<5 s per the paper).
  config.lrm.dispatch_overhead_s = 4.0;
  config.lrm.cleanup_overhead_s = 2.0;
  config.lrm_nodes = 32;
  config.gram.request_overhead_s = 2.0;
  config.provisioner.max_executors = 32;
  config.provisioner.executors_per_node = 1;
  config.provisioner.poll_interval_s = 1.0;
  const bool infinite = idle_timeout_s <= 0;
  config.provisioner.min_executors = infinite ? 32 : 0;
  config.executor_template.idle_timeout_s = infinite ? 0.0 : idle_timeout_s;

  core::FalkonCluster cluster(clock, config);
  cluster.start_drivers();

  if (infinite) {
    // Paper: machines provisioned before the experiment; that time is not
    // counted. Wait for all 32 to register.
    RealClock wall;
    const double wall_start = wall.now_s();
    while (cluster.dispatcher().status().registered_executors < 32 &&
           wall.now_s() - wall_start < 30.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  workflow::FalkonProvider provider(cluster.client(), ClientId{1});
  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.poll_slice_s = 1.0;
  options.deadline_s = 100000.0;
  const double t0 = clock.now_s();
  auto stats = engine.run(graph, options);
  const double t1 = clock.now_s();
  cluster.stop();
  if (!stats.ok()) return run;

  run.outcome.ok = true;
  run.outcome.queue_time_s = stats.value().queue_time.mean();
  run.outcome.exec_time_s = stats.value().exec_time.mean();
  run.outcome.time_to_complete_s = stats.value().makespan_s;
  run.outcome.allocations = cluster.provisioner().stats().allocations_requested;
  if (infinite && run.outcome.allocations <= 1) {
    run.outcome.allocations = 0;  // pre-provisioned, as the paper counts it
  }

  // Executor-alive seconds = integral of (registered-idle + active).
  const auto& registered = cluster.provisioner().registered_series();
  const auto& active = cluster.provisioner().active_series();
  const double alive =
      registered.integrate(t0, t1) + active.integrate(t0, t1) +
      (infinite ? 0.0 : 0.0);
  run.outcome.utilization =
      alive > 0 ? std::min(1.0, graph.total_cpu_s() / alive) : 0.0;
  run.outcome.efficiency =
      graph.staged_ideal_makespan_s(32) / run.outcome.time_to_complete_s;
  run.allocated = cluster.provisioner().allocated_series();
  run.registered = registered;
  run.active = active;
  return run;
}

void print_trace(const char* name, const FalkonRun& run) {
  title(strf("%s executor trace (Figures 12/13 style)", name));
  auto series_values = [&](const TimeSeries& series) {
    std::vector<double> values;
    const double end = series.last_time();
    for (double t = 0; t <= end; t += 10.0) values.push_back(series.sample(t));
    return values;
  };
  note("allocated:  " + sparkline(series_values(run.allocated)));
  note("registered: " + sparkline(series_values(run.registered)));
  note("active:     " + sparkline(series_values(run.active)));
}

}  // namespace

int main() {
  const auto graph = workflow::make_synthetic_18stage();

  title("Figure 11: the 18-stage synthetic workload");
  Table shape({"stage", "tasks", "task length"});
  int stage_number = 1;
  for (const auto& stage : workflow::synthetic_18stage_shape()) {
    shape.row({strf("%d", stage_number++), strf("%d", stage.tasks),
               strf("%.0f s", stage.task_length_s)});
  }
  shape.print();
  note(strf("total: %zu tasks, %.0f CPU-seconds, staged ideal on 32 machines"
            " %.0f s (paper: 1000 / 17820 / 1260)",
            graph.size(), graph.total_cpu_s(),
            graph.staged_ideal_makespan_s(32)));

  std::vector<RunOutcome> outcomes;
  outcomes.push_back(run_gram4_pbs(graph));
  FalkonRun falkon15 = run_falkon(graph, 15.0, "Falkon-15");
  outcomes.push_back(falkon15.outcome);
  outcomes.push_back(run_falkon(graph, 60.0, "Falkon-60").outcome);
  outcomes.push_back(run_falkon(graph, 120.0, "Falkon-120").outcome);
  FalkonRun falkon180 = run_falkon(graph, 180.0, "Falkon-180");
  outcomes.push_back(falkon180.outcome);
  outcomes.push_back(run_falkon(graph, 0.0, "Falkon-inf").outcome);

  title("Table 3: average per-task queue and execution times");
  Table table3({"configuration", "queue time (s)", "exec time (s)", "exec %"});
  for (const auto& outcome : outcomes) {
    if (!outcome.ok) {
      table3.row({outcome.name, "FAILED", "-", "-"});
      continue;
    }
    const double fraction =
        outcome.exec_time_s /
        std::max(1e-9, outcome.exec_time_s + outcome.queue_time_s);
    table3.row({outcome.name, strf("%.1f", outcome.queue_time_s),
                strf("%.1f", outcome.exec_time_s),
                strf("%.1f%%", fraction * 100.0)});
  }
  table3.row({"Ideal (32 nodes), paper", "42.2", "17.8", "29.7%"});
  table3.print();
  note("paper row examples: GRAM4+PBS 611.1 / 56.5 / 8.5%; Falkon-15 87.3 /"
       " 17.9 / 17.0%; Falkon-inf 43.5 / 17.9 / 29.2%");

  title("Table 4: overall resource utilization and execution efficiency");
  Table table4({"configuration", "time to complete (s)", "utilization",
                "exec efficiency", "allocations"});
  for (const auto& outcome : outcomes) {
    if (!outcome.ok) {
      table4.row({outcome.name, "FAILED", "-", "-", "-"});
      continue;
    }
    table4.row({outcome.name, strf("%.0f", outcome.time_to_complete_s),
                strf("%.0f%%", outcome.utilization * 100.0),
                strf("%.0f%%", outcome.efficiency * 100.0),
                strf("%llu", static_cast<unsigned long long>(outcome.allocations))});
  }
  table4.row({"Ideal (32 nodes), paper", "1260", "100%", "100%", "0"});
  table4.print();
  note("paper rows: GRAM4+PBS 4904 s / 30% / 26% / 1000; Falkon-15 1754 s /"
       " 89% / 72% / 11; Falkon-inf 1276 s / 44% / 99% / 0");
  note("shape checks: utilization falls and efficiency rises as the idle"
       " timeout grows; GRAM4+PBS is ~3-4x slower than every Falkon config.");

  print_trace("Falkon-15", falkon15);
  print_trace("Falkon-180", falkon180);
  return 0;
}
