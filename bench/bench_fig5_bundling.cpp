// Figure 5 / section 4.3: task-submission throughput and cost per task as
// a function of bundle size.
//
// Paper shape: ~20 tasks/s unbundled, rising to a peak of almost 1,500
// tasks/s around 300 tasks per bundle, then *declining* — the decline
// traced to Axis's grow-able array re-allocating and copying while
// deserialising large bundles (an O(n^2) term our model carries).
//
// We print the calibrated model sweep, then measure the same sweep on this
// C++ implementation's real submission path (binary codec instead of XML):
// the C++ path has no grow-array pathology, so its curve saturates instead
// of declining — quantifying what the paper's proposed rewrite buys.
#include <algorithm>

#include "bench_util.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/service.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/cost_model.h"
#include "wire/message.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

/// Real submission path: encode + decode + dispatcher submit of bundles.
double measure_cpp_submit(int bundle, int total_tasks) {
  RealClock clock;
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  auto instance = dispatcher.create_instance(ClientId{1});
  if (!instance.ok()) return 0.0;

  std::uint64_t next_id = 1;
  const double start = clock.now_s();
  int sent = 0;
  while (sent < total_tasks) {
    const int n = std::min(bundle, total_tasks - sent);
    wire::SubmitRequest request;
    request.instance_id = instance.value();
    for (int i = 0; i < n; ++i) {
      request.tasks.push_back(make_noop_task(TaskId{next_id++}));
    }
    // Full wire path: serialise, parse, enqueue — what a TCP client costs
    // minus the kernel.
    auto bytes = wire::encode_message(request);
    auto decoded = wire::decode_message(bytes);
    if (!decoded.ok()) return 0.0;
    auto& submit = std::get<wire::SubmitRequest>(decoded.value());
    if (!dispatcher.submit(submit.instance_id, std::move(submit.tasks)).ok()) {
      return 0.0;
    }
    sent += n;
  }
  const double elapsed = clock.now_s() - start;
  return elapsed > 0 ? total_tasks / elapsed : 0.0;
}

}  // namespace

int main() {
  title("Figure 5: bundling throughput and cost per task");

  sim::BundlingCostModel model;
  obs::Obs obs;
  Table table({"bundle size", "model tasks/s", "model ms/task",
               "C++ path tasks/s"});
  const std::vector<int> bundles{1,   2,   5,   10,  25,   50,  100,
                                 200, 300, 500, 750, 1000, 1500, 2000};
  // Best of five, with the repetitions interleaved round-robin across
  // bundle sizes: a machine-wide slow phase (scheduler, thermal, noisy
  // neighbour) then lands on every point of one pass instead of distorting
  // a few adjacent bundle sizes, and the per-point max recovers the
  // cost-curve shape rather than the noise floor.
  std::vector<double> best_cpp(bundles.size(), 0.0);
  (void)measure_cpp_submit(100, 40000);  // warm-up: page in and settle
  for (int rep = 0; rep < 5; ++rep) {
    for (std::size_t i = 0; i < bundles.size(); ++i) {
      best_cpp[i] = std::max(best_cpp[i], measure_cpp_submit(bundles[i], 40000));
    }
  }
  double best_rate = 0.0;
  int best_bundle = 0;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    const int bundle = bundles[i];
    const double rate = model.throughput(bundle);
    const double cost_ms = model.bundle_cost_s(bundle) / bundle * 1e3;
    if (rate > best_rate) {
      best_rate = rate;
      best_bundle = bundle;
    }
    obs.registry()
        .gauge("bench.fig5.model_tasks_per_s", {{"bundle", strf("%d", bundle)}})
        .set(rate);
    obs.registry()
        .gauge("bench.fig5.cpp_tasks_per_s", {{"bundle", strf("%d", bundle)}})
        .set(best_cpp[i]);
    table.row({strf("%d", bundle), strf("%.0f", rate), strf("%.3f", cost_ms),
               strf("%.0f", best_cpp[i])});
  }
  table.print();
  note(strf("model peak: %.0f tasks/s at %d tasks/bundle"
            " (paper: ~1500 near 300, ~20 unbundled)",
            best_rate, best_bundle));
  note("the C++ binary-codec path keeps rising with bundle size: no Axis"
       " grow-array collapse.");
  if (obs::save_metrics_json(obs.registry(), "BENCH_fig5_bundling.json").ok()) {
    note("metrics snapshot: BENCH_fig5_bundling.json");
  }
  return 0;
}
