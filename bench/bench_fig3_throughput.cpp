// Figure 3 / section 4.1: throughput as a function of executor count, with
// and without security, against the GT4 WS-call upper bound.
//
// Paper numbers on their 2007 testbed (dispatcher on a dual Xeon 3 GHz):
//   GT4 no security:           ~500 WS calls/s (upper bound)
//   Falkon, no security:        487 tasks/s (256 executors)
//   Falkon, GSISecureConv.:     204 tasks/s
//   single executor:            28 / 12 tasks/s (no sec / sec)
//
// We reproduce the *shape* with the calibrated DES, then also measure the
// raw throughput of this C++ implementation (in-process and over loopback
// TCP) — the rewrite the paper's section 6 contemplates.
#include "bench_util.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/service.h"
#include "core/service_tcp.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

double measure_inproc_cpp(int executors, std::uint64_t tasks,
                          obs::Obs* obs = nullptr) {
  RealClock clock;
  core::DispatcherConfig config;
  config.notify_threads = 2;
  config.obs = obs;
  core::InProcFalkon falkon(clock, config);
  auto factory = [](Clock&) { return std::make_unique<core::NoopEngine>(); };
  core::ExecutorOptions options;
  options.obs = obs;
  if (!falkon.add_executors(executors, factory, options).ok()) {
    return 0.0;
  }
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  if (!session.ok()) return 0.0;
  std::vector<TaskSpec> specs;
  specs.reserve(tasks);
  for (std::uint64_t i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{i}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 120.0);
  const double elapsed = clock.now_s() - start;
  if (!results.ok() || elapsed <= 0) return 0.0;
  return static_cast<double>(tasks) / elapsed;
}

double measure_tcp_cpp(int executors, std::uint64_t tasks,
                       obs::Obs* obs = nullptr) {
  RealClock clock;
  // Adaptive wire bundling: executors send the adaptive sentinels and the
  // dispatcher sizes each TaskBundle from current queue depth (Fig. 5's
  // bundling win applied to the dispatch path).
  core::DispatcherConfig config;
  config.max_adaptive_bundle = 256;
  config.obs = obs;
  core::Dispatcher dispatcher(clock, config);
  core::TcpDispatcherServer server(dispatcher, obs);
  if (!server.start().ok()) return 0.0;
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> harnesses;
  for (int e = 0; e < executors; ++e) {
    core::ExecutorOptions options;
    options.adaptive_bundle = true;
    options.obs = obs;
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<core::NoopEngine>(), options);
    if (!harness->start().ok()) return 0.0;
    harnesses.push_back(std::move(harness));
  }
  // Streaming client: the instance subscribes on the push channel and
  // drained mailbox batches arrive as pushed ResultStream frames — the
  // WaitResultsRequest roundtrip per batch disappears from the hot path.
  auto client = core::TcpDispatcherClient::connect(
      "127.0.0.1", server.rpc_port(), server.push_port());
  if (!client.ok()) return 0.0;
  // Large client-side submit bundles: the C++ binary codec keeps gaining
  // with bundle size (Fig. 5 — no Axis grow-array collapse), so the client
  // feeds the dispatcher in big bites instead of 100-task WS-era chunks.
  core::SessionOptions session_options;
  session_options.bundle_size = 5000;
  auto session =
      core::FalkonSession::open(*client.value(), ClientId{1}, session_options);
  if (!session.ok()) return 0.0;
  std::vector<TaskSpec> specs;
  for (std::uint64_t i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{i}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 120.0);
  const double elapsed = clock.now_s() - start;
  harnesses.clear();
  server.stop();
  if (!results.ok() || elapsed <= 0) return 0.0;
  return static_cast<double>(tasks) / elapsed;
}

}  // namespace

int main() {
  title("Figure 3: throughput vs executor count (sleep-0 tasks)");
  note("model: DES calibrated to the paper's GT4/Java testbed");

  Table table({"executors", "Falkon no-sec (tasks/s)", "Falkon GSI (tasks/s)",
               "GT4 bound (calls/s)"});
  for (int executors : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const std::uint64_t tasks =
        std::min<std::uint64_t>(30000, 3000ULL * executors);
    const double insecure = sim::falkon_throughput(executors, false, tasks);
    const double secure = sim::falkon_throughput(executors, true, tasks);
    table.row({strf("%d", executors), strf("%.1f", insecure),
               strf("%.1f", secure), "500"});
  }
  table.print();
  note("paper anchors: 487 (no sec) / 204 (GSI) at saturation; 28 / 12 with"
       " one executor");

  title("This C++ implementation on this host (not the paper's testbed)");
  // Metrics-on run: the registry counters ride along with the measurement
  // and land in BENCH_fig3_throughput.json (the snapshot proves the
  // metrics hot path is cheap enough to leave on).
  //
  // Best of three per configuration, repetitions interleaved across
  // configurations: a machine-wide slow phase lands on one whole pass, not
  // on a single executor count, so the 1-vs-4 scaling ratio reflects the
  // implementation rather than the noisy host.
  obs::Obs obs;
  constexpr int kConfigs[] = {1, 4};
  double inproc_best[2] = {0.0, 0.0};
  double tcp_best[2] = {0.0, 0.0};
  for (int rep = 0; rep < 3; ++rep) {
    for (int c = 0; c < 2; ++c) {
      inproc_best[c] =
          std::max(inproc_best[c], measure_inproc_cpp(kConfigs[c], 20000, &obs));
    }
    for (int c = 0; c < 2; ++c) {
      tcp_best[c] = std::max(tcp_best[c], measure_tcp_cpp(kConfigs[c], 100000));
    }
  }
  // The paper's full x-axis over TCP (Figure 3 runs to 256 executors). The
  // reactor makes the dispatcher side cost loops + pool regardless of N, so
  // this curve now completes on a single-core host; scripts/bench.sh gates
  // only on the 1/4-executor points above, these columns are informational.
  struct CurvePoint {
    int executors;
    int reps;
    std::uint64_t tasks;
    double best{0.0};
  };
  // Interleaved best-of-N: the 64..256 points gate the curve's shape
  // (20%-per-doubling monotonicity), and a single rep leaves them with
  // ±25% host noise — more than the gate's whole allowance — so the tail
  // points take three reps each, interleaved so a machine-wide slow phase
  // lands on one whole pass rather than one executor count.
  CurvePoint curve[] = {{8, 2, 100000}, {16, 2, 100000}, {64, 3, 60000},
                        {128, 3, 60000}, {256, 3, 60000}};
  for (int rep = 0; rep < 3; ++rep) {
    for (auto& point : curve) {
      if (rep >= point.reps) continue;
      point.best =
          std::max(point.best, measure_tcp_cpp(point.executors, point.tasks));
    }
  }
  Table cpp({"configuration", "executors", "tasks/s"});
  for (int c = 0; c < 2; ++c) {
    obs.registry()
        .gauge("bench.fig3.inproc_tasks_per_s",
               {{"executors", strf("%d", kConfigs[c])}})
        .set(inproc_best[c]);
    cpp.row({"in-process", strf("%d", kConfigs[c]), strf("%.0f", inproc_best[c])});
  }
  for (int c = 0; c < 2; ++c) {
    obs.registry()
        .gauge("bench.fig3.tcp_tasks_per_s",
               {{"executors", strf("%d", kConfigs[c])}})
        .set(tcp_best[c]);
    cpp.row({"loopback TCP", strf("%d", kConfigs[c]), strf("%.0f", tcp_best[c])});
  }
  for (const auto& point : curve) {
    obs.registry()
        .gauge("bench.fig3.tcp_tasks_per_s",
               {{"executors", strf("%d", point.executors)}})
        .set(point.best);
    cpp.row({"loopback TCP", strf("%d", point.executors),
             strf("%.0f", point.best)});
  }
  cpp.print();
  note("the C/C++ rewrite the paper's section 6 anticipates removes the"
       " GT4/XML per-call cost entirely.");

  // Per-task overhead breakdown (the Dask-overheads-style attribution):
  // separate traced runs at the curve's knee and tail, so the cost at 256
  // executors is attributable stage by stage instead of guessed. Tracing
  // costs a ring write per stage per task, so these runs are NOT the gated
  // timing measurements above.
  title("Per-task overhead breakdown (traced TCP runs)");
  Table shares({"executors", "stage", "share of task wall-clock"});
  for (int n : {16, 256}) {
    obs::ObsConfig trace_config;
    trace_config.tracing = true;
    trace_config.trace_capacity = 1u << 19;  // 30000 tasks x 7 stages fits
    obs::Obs traced(trace_config);
    (void)measure_tcp_cpp(n, 30000, &traced);
    const auto breakdown = obs::stage_breakdown(traced.tracer().snapshot());
    const auto label = strf("%d", n);
    auto emit = [&](const char* stage, double share) {
      obs.registry()
          .gauge("bench.fig3.stage_share",
                 {{"executors", label}, {"stage", stage}})
          .set(share);
      shares.row({label, stage, strf("%.1f%%", share * 100.0)});
    };
    emit("queued", breakdown.share(obs::Stage::kQueued));
    emit("exec", breakdown.share(obs::Stage::kExec));
    emit("deliver_result", breakdown.share(obs::Stage::kDeliverResult));
    emit("dispatch_wire", breakdown.gap_share());
  }
  shares.print();
  note("queued = dispatcher FIFO wait; dispatch_wire = span time no stage"
       " covers (notify/get_work transit, thread wake-ups); traced runs,"
       " so absolute throughput is lower than the table above.");
  if (obs::save_metrics_json(obs.registry(), "BENCH_fig3_throughput.json").ok()) {
    note("metrics snapshot: BENCH_fig3_throughput.json");
  }
  return 0;
}
