// Shared console-table helpers for the reproduction benchmarks. Every
// bench prints the paper's expected numbers next to ours, so the output is
// directly comparable with EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"

namespace falkon::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("  |");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("  |");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Sparse ASCII sparkline of a series (for figure-shaped outputs).
inline std::string sparkline(const std::vector<double>& values,
                             std::size_t width = 60) {
  static const char* kLevels = " .:-=+*#%@";
  if (values.empty()) return "";
  double peak = 0.0;
  for (double v : values) peak = std::max(peak, v);
  if (peak <= 0) peak = 1.0;
  std::string out;
  const std::size_t stride = std::max<std::size_t>(1, values.size() / width);
  for (std::size_t i = 0; i < values.size(); i += stride) {
    double bucket = 0.0;
    for (std::size_t j = i; j < std::min(values.size(), i + stride); ++j) {
      bucket = std::max(bucket, values[j]);
    }
    const auto level = static_cast<std::size_t>(bucket / peak * 9.0);
    out.push_back(kLevels[std::min<std::size_t>(level, 9)]);
  }
  return out;
}

}  // namespace falkon::bench
