// Figure 15 / section 5.2: Montage mosaic (3x3 degrees around M16)
// execution time per stage for Swift+GRAM4+PBS with clustering,
// Swift+Falkon, and the Montage team's MPI version (modelled).
//
// Paper shape: GRAM4+PBS(clustered) is slowest overall; Falkon lands close
// to MPI (within ~5% once the serial mAdd is excluded); Falkon loses on
// mAdd because only the MPI version parallelised the second co-add step.
#include <map>

#include "bench_util.h"
#include "common/clock.h"
#include "core/service.h"
#include "workflow/engine.h"
#include "workflow/workloads.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

constexpr double kScale = 400.0;
constexpr int kProcessors = 64;

lrm::LrmConfig pbs_profile() {
  lrm::LrmConfig config;
  config.name = "pbs+gram4";
  config.poll_interval_s = 60.0;
  config.submit_overhead_s = 0.5;
  config.dispatch_overhead_s = 20.0;
  config.cleanup_overhead_s = 10.0;
  config.start_jitter_s = 2.0;
  return config;
}

using StageTimes = std::map<std::string, double>;

struct RunResult {
  double total{-1.0};
  StageTimes stage_end;
};

RunResult run_clustered(const workflow::WorkflowGraph& graph) {
  ScaledClock clock(kScale);
  lrm::BatchScheduler scheduler(clock, pbs_profile(), kProcessors);
  lrm::GramConfig gram_config;
  gram_config.request_overhead_s = 2.0;
  lrm::Gram4Gateway gram(clock, scheduler, gram_config);
  workflow::ClusteredBatchProvider provider(clock, gram, scheduler,
                                            kProcessors / 2,
                                            /*min_cluster=*/8);
  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.poll_slice_s = 2.0;
  options.deadline_s = 400000.0;
  auto stats = engine.run(graph, options);
  RunResult result;
  if (!stats.ok()) return result;
  result.total = stats.value().makespan_s;
  for (const auto& [stage, s] : stats.value().stages) {
    result.stage_end[stage] = s.last_done_s;
  }
  return result;
}

RunResult run_falkon(const workflow::WorkflowGraph& graph) {
  ScaledClock clock(kScale);
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  auto factory = [](Clock& c) { return std::make_unique<core::SleepEngine>(c); };
  RunResult result;
  if (!falkon.add_executors(kProcessors, factory, core::ExecutorOptions{}).ok()) {
    return result;
  }
  workflow::FalkonProvider provider(falkon.client(), ClientId{1});
  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.poll_slice_s = 1.0;
  options.deadline_s = 400000.0;
  auto stats = engine.run(graph, options);
  if (!stats.ok()) return result;
  result.total = stats.value().makespan_s;
  for (const auto& [stage, s] : stats.value().stages) {
    result.stage_end[stage] = s.last_done_s;
  }
  return result;
}

/// MPI model: per-stage barriers; each stage runs its tasks on all 64
/// processors with negligible dispatch cost, but pays a fixed
/// initialisation/aggregation cost per stage (the paper attributes MPI's
/// deficit to "initialization and aggregation actions before each step").
/// The MPI mAdd IS parallelised (unlike the Swift versions).
RunResult run_mpi_model(const workflow::WorkflowGraph& graph) {
  constexpr double kPerStageInit = 25.0;
  std::map<std::string, std::pair<std::size_t, double>> stage_work;
  std::vector<std::string> order = graph.stages();
  for (const auto& node : graph.nodes()) {
    auto& [count, cpu] = stage_work[node.stage];
    ++count;
    cpu += node.task.estimated_runtime_s;
  }
  RunResult result;
  double t = 0.0;
  for (const auto& stage : order) {
    const auto& [count, cpu] = stage_work[stage];
    double stage_time = kPerStageInit + cpu / kProcessors;
    if (stage == "mAdd") {
      // parallel co-add: ~8-way effective parallelism for the final add
      stage_time = kPerStageInit + cpu / 8.0;
    }
    t += stage_time;
    result.stage_end[stage] = t;
  }
  result.total = t;
  return result;
}

}  // namespace

int main() {
  title("Figure 15: Montage (M16, 3x3 deg) execution time by stage");
  const auto graph = workflow::make_montage_workflow();
  note(strf("workflow: %zu tasks, %.0f CPU-seconds, %d processors",
            graph.size(), graph.total_cpu_s(), kProcessors));

  const RunResult clustered = run_clustered(graph);
  const RunResult falkon = run_falkon(graph);
  const RunResult mpi = run_mpi_model(graph);

  Table table({"stage", "GRAM4+PBS clustered", "Falkon", "MPI (modelled)"});
  for (const auto& stage : graph.stages()) {
    auto cell = [&](const RunResult& r) {
      auto it = r.stage_end.find(stage);
      return it == r.stage_end.end() ? std::string("-")
                                     : strf("%.0f", it->second);
    };
    table.row({stage, cell(clustered), cell(falkon), cell(mpi)});
  }
  table.row({"TOTAL", strf("%.0f", clustered.total), strf("%.0f", falkon.total),
             strf("%.0f", mpi.total)});
  table.print();
  note("cells are cumulative stage-completion times (seconds)");

  // The paper's apples-to-apples: excluding the final mAdd, Swift+Falkon
  // is ~5% faster than MPI (1067 s vs 1120 s).
  auto minus_madd = [&](const RunResult& r) {
    auto total_it = r.stage_end.find("mAdd");
    auto prev_it = r.stage_end.find("mAddSub");
    if (total_it == r.stage_end.end() || prev_it == r.stage_end.end()) {
      return r.total;
    }
    return r.total - (total_it->second - prev_it->second);
  };
  note(strf("excluding mAdd: Falkon %.0f s vs MPI %.0f s (paper: 1067 vs"
            " 1120, Falkon ~5%% faster)",
            minus_madd(falkon), minus_madd(mpi)));
  note(strf("GRAM4+PBS clustered vs Falkon: %.1fx slower (paper: ~2.5x"
            " end-to-end)",
            clustered.total / falkon.total));
  return 0;
}
