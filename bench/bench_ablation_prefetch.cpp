// Ablation: executor task pre-fetching (paper section 6 future work,
// implemented here): "executors can request new tasks before they complete
// execution of old tasks, thus overlapping communication and execution."
//
// Measured over real loopback TCP, where the dispatch round trip is an
// actual network exchange worth overlapping. We compare tasks/s with and
// without pre-fetch for short tasks, plus the piggy-backing ablation on
// the same axis (both attack the same per-task round trip).
#include "bench_util.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

double run_tcp(bool prefetch, bool piggyback, int executors, int tasks) {
  RealClock clock;
  core::DispatcherConfig config;
  config.piggyback = piggyback;
  core::Dispatcher dispatcher(clock, config);
  core::TcpDispatcherServer server(dispatcher);
  if (!server.start().ok()) return 0.0;
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> pool;
  for (int e = 0; e < executors; ++e) {
    core::ExecutorOptions options;
    options.prefetch = prefetch;
    options.piggyback_tasks = piggyback ? 1 : 0;
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<core::NoopEngine>(), options);
    if (!harness->start().ok()) return 0.0;
    pool.push_back(std::move(harness));
  }
  auto client = core::TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
  if (!client.ok()) return 0.0;
  auto session = core::FalkonSession::open(*client.value(), ClientId{1});
  if (!session.ok()) return 0.0;

  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 120.0);
  const double elapsed = clock.now_s() - start;
  pool.clear();
  server.stop();
  if (!results.ok() || elapsed <= 0) return 0.0;
  return tasks / elapsed;
}

}  // namespace

int main() {
  title("Ablation: pre-fetch and piggy-backing over real loopback TCP");
  note("sleep-0 tasks, 2 executors, 4000 tasks per cell");

  Table table({"piggyback", "prefetch", "tasks/s"});
  for (bool piggyback : {false, true}) {
    for (bool prefetch : {false, true}) {
      table.row({piggyback ? "on" : "off", prefetch ? "on" : "off",
                 strf("%.0f", run_tcp(prefetch, piggyback, 2, 4000))});
    }
  }
  table.print();
  note("piggy-backing merges the result/ack/next-task exchanges (2 messages"
       " per task); pre-fetch overlaps the remaining round trip with"
       " execution.");

  title("Same ablation in the calibrated 2007-testbed model");
  Table model({"piggyback", "tasks/s (64 executors)"});
  for (bool piggyback : {false, true}) {
    sim::SimFalkonConfig config;
    config.executors = 64;
    config.task_count = 20000;
    config.piggyback = piggyback;
    model.row({piggyback ? "on" : "off",
               strf("%.0f", sim::simulate_falkon(config).avg_throughput())});
  }
  model.print();
  note("without piggy-backing every task pays the notify+get-work path:"
       " the dispatcher saturates ~40% lower.");
  return 0;
}
