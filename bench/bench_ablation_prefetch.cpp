// Ablation: executor task pre-fetching (paper section 6 future work,
// implemented here): "executors can request new tasks before they complete
// execution of old tasks, thus overlapping communication and execution."
//
// Measured over real loopback TCP, where the dispatch round trip is an
// actual network exchange worth overlapping. We compare tasks/s with and
// without pre-fetch for short tasks, plus the piggy-backing ablation on
// the same axis (both attack the same per-task round trip).
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/data_plane.h"
#include "core/policies.h"
#include "core/service_tcp.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

double run_tcp(bool prefetch, bool piggyback, int executors, int tasks) {
  RealClock clock;
  core::DispatcherConfig config;
  config.piggyback = piggyback;
  core::Dispatcher dispatcher(clock, config);
  core::TcpDispatcherServer server(dispatcher);
  if (!server.start().ok()) return 0.0;
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> pool;
  for (int e = 0; e < executors; ++e) {
    core::ExecutorOptions options;
    options.prefetch = prefetch;
    options.piggyback_tasks = piggyback ? 1 : 0;
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<core::NoopEngine>(), options);
    if (!harness->start().ok()) return 0.0;
    pool.push_back(std::move(harness));
  }
  auto client = core::TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
  if (!client.ok()) return 0.0;
  auto session = core::FalkonSession::open(*client.value(), ClientId{1});
  if (!session.ok()) return 0.0;

  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 120.0);
  const double elapsed = clock.now_s() - start;
  pool.clear();
  server.stop();
  if (!results.ok() || elapsed <= 0) return 0.0;
  return tasks / elapsed;
}

// ---- staging-ahead vs diffusion (ROADMAP item 2 leftover) ----
//
// The data-plane flavour of pre-fetching, over real loopback TCP, with
// placement as the only variable (next-available dispatch both ways):
// either every executor's cache is staged ahead of the run with the full
// working set (data waits for the tasks), or a single holder seeds it and
// the set diffuses on demand through peer-to-peer kDataFetch off the
// stamped holder (tasks drag the data behind them).
struct DataOutcome {
  double tasks_per_s{0.0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t p2p_fetches{0};
};

DataOutcome run_data_tcp(bool stage_ahead, int executors, int objects,
                         int tasks) {
  constexpr std::uint64_t kObjectBytes = 64ULL << 10;
  RealClock clock;
  // Next-available dispatch: a locality router would pin every task to
  // whichever executor already holds the object and the placement under
  // test would never matter.
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  core::TcpDispatcherServer server(dispatcher);
  if (!server.start().ok()) return {};

  iomodel::IoModel model;
  struct Slot {
    std::unique_ptr<core::DataPlane> plane;
    core::P2pDataEngine* engine{nullptr};  // owned by the harness
    std::unique_ptr<core::TcpExecutorHarness> harness;
  };
  std::vector<Slot> fleet(static_cast<std::size_t>(executors));
  for (int e = 0; e < executors; ++e) {
    auto& cell = fleet[static_cast<std::size_t>(e)];
    core::DataPlaneOptions popts;
    // Room for the whole working set either way: the seeding policy, not
    // the capacity, is the variable under test.
    popts.cache_capacity_bytes =
        static_cast<std::uint64_t>(objects) * kObjectBytes + 1;
    cell.plane = std::make_unique<core::DataPlane>(popts);
    if (stage_ahead) {
      // Staged ahead: every executor already holds the full working set.
      for (int o = 0; o < objects; ++o) {
        cell.plane->insert("object-" + std::to_string(o), kObjectBytes);
      }
    } else if (e == 0) {
      // Diffusion: one holder seeds everything; the rest fill via P2P.
      for (int o = 0; o < objects; ++o) {
        cell.plane->insert("object-" + std::to_string(o), kObjectBytes);
      }
    }
    auto engine = std::make_unique<core::P2pDataEngine>(clock, model,
                                                        executors, *cell.plane);
    cell.engine = engine.get();
    core::ExecutorOptions eopts;
    eopts.node_id = NodeId{static_cast<std::uint64_t>(e + 1)};
    eopts.host = "127.0.0.1";
    eopts.data = cell.plane.get();
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::move(engine), eopts);
    if (!harness->start().ok()) return {};
    cell.harness = std::move(harness);
  }

  auto client = core::TcpDispatcherClient::connect(
      "127.0.0.1", server.rpc_port(), server.push_port());
  if (!client.ok()) return {};
  auto session = core::FalkonSession::open(*client.value(), ClientId{1});
  if (!session.ok()) return {};

  Rng rng(42);
  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    const auto object =
        rng.uniform_int(0, static_cast<std::uint64_t>(objects - 1));
    TaskSpec task = make_data_task(TaskId{static_cast<std::uint64_t>(i)},
                                   /*compute_s=*/0.0, DataLocation::kSharedFs,
                                   IoMode::kRead, kObjectBytes, 0);
    task.data_object = "object-" + std::to_string(object);
    task.capture_output = false;
    specs.push_back(std::move(task));
  }

  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 240.0);
  const double elapsed = clock.now_s() - start;

  DataOutcome outcome;
  if (results.ok() && elapsed > 0) {
    outcome.tasks_per_s = static_cast<double>(tasks) / elapsed;
  }
  for (auto& cell : fleet) {
    outcome.cache_hits += cell.plane->cache_hits();
    outcome.cache_misses += cell.plane->cache_misses();
    outcome.p2p_fetches += cell.engine->p2p_fetches();
    cell.harness.reset();
  }
  dispatcher.shutdown();
  server.stop();
  return outcome;
}

}  // namespace

int main() {
  title("Ablation: pre-fetch and piggy-backing over real loopback TCP");
  note("sleep-0 tasks, 2 executors, 4000 tasks per cell");

  Table table({"piggyback", "prefetch", "tasks/s"});
  for (bool piggyback : {false, true}) {
    for (bool prefetch : {false, true}) {
      table.row({piggyback ? "on" : "off", prefetch ? "on" : "off",
                 strf("%.0f", run_tcp(prefetch, piggyback, 2, 4000))});
    }
  }
  table.print();
  note("piggy-backing merges the result/ack/next-task exchanges (2 messages"
       " per task); pre-fetch overlaps the remaining round trip with"
       " execution.");

  title("Staging-ahead vs diffusion: the data-plane pre-fetch (loopback TCP)");
  note("8 executors, 16 x 64 KiB objects, 400 read tasks, next-available"
       " dispatch");
  Table data({"data placement", "tasks/s", "cache hit rate", "p2p fetches"});
  auto hit_rate = [](const DataOutcome& o) {
    const auto total = o.cache_hits + o.cache_misses;
    return total ? 100.0 * static_cast<double>(o.cache_hits) /
                       static_cast<double>(total)
                 : 0.0;
  };
  const auto staged = run_data_tcp(true, 8, 16, 400);
  const auto diffused = run_data_tcp(false, 8, 16, 400);
  data.row({"staged ahead", strf("%.0f", staged.tasks_per_s),
            strf("%.0f%%", hit_rate(staged)),
            strf("%llu", static_cast<unsigned long long>(staged.p2p_fetches))});
  data.row({"diffusion (1 seed holder)", strf("%.0f", diffused.tasks_per_s),
            strf("%.0f%%", hit_rate(diffused)),
            strf("%llu",
                 static_cast<unsigned long long>(diffused.p2p_fetches))});
  data.print();
  note("staging ahead pays the placement cost before the clock starts;"
       " diffusion pays it in-band as P2P fetches off the seed holder until"
       " the working set spreads.");

  title("Same ablation in the calibrated 2007-testbed model");
  Table model({"piggyback", "tasks/s (64 executors)"});
  for (bool piggyback : {false, true}) {
    sim::SimFalkonConfig config;
    config.executors = 64;
    config.task_count = 20000;
    config.piggyback = piggyback;
    model.row({piggyback ? "on" : "off",
               strf("%.0f", sim::simulate_falkon(config).avg_throughput())});
  }
  model.print();
  note("without piggy-backing every task pays the notify+get-work path:"
       " the dispatcher saturates ~40% lower.");
  return 0;
}
