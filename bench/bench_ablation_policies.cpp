// Ablation: the five resource-acquisition policies and the two release
// policy families (paper section 3.1 describes all; section 4.6 evaluates
// only all-at-once + distributed release).
//
// Runs the real multi-level stack (ScaledClock) on a burst workload and
// compares allocation counts, time to complete, and resource waste across
// policies — quantifying the paper's remark that one-at-a-time "would have
// grown [allocation requests] significantly" against GRAM's ~0.5 req/s.
#include "bench_util.h"
#include "common/clock.h"
#include "core/service.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

struct Outcome {
  bool ok{false};
  double makespan_s{0};
  std::uint64_t allocations{0};
  double utilization{0};
};

Outcome run_policy(const std::string& acquisition, double idle_timeout_s,
                   int centralized_threshold) {
  ScaledClock clock(250.0);
  core::FalkonClusterConfig config;
  config.lrm.poll_interval_s = 20.0;
  config.lrm.submit_overhead_s = 0.5;
  config.lrm.dispatch_overhead_s = 3.0;
  config.lrm.cleanup_overhead_s = 2.0;
  config.lrm_nodes = 16;
  config.gram.request_overhead_s = 2.0;  // the serial GRAM bottleneck
  config.provisioner.max_executors = 16;
  config.provisioner.poll_interval_s = 1.0;
  config.acquisition_policy = acquisition;
  config.executor_template.idle_timeout_s = idle_timeout_s;
  config.centralized_release_threshold = centralized_threshold;

  core::FalkonCluster cluster(clock, config);
  cluster.start_drivers();
  auto session = core::FalkonSession::open(cluster.client(), ClientId{1});
  Outcome outcome;
  if (!session.ok()) return outcome;

  // Burst workload: 48 x sleep-30 (3 waves worth of work for 16 executors).
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= 48; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)}, 30.0));
  }
  const double start = clock.now_s();
  if (!session.value()->submit(std::move(tasks)).ok()) return outcome;
  auto results = session.value()->wait(48, 1e6);
  const double end = clock.now_s();
  if (!results.ok()) return outcome;

  outcome.ok = true;
  outcome.makespan_s = end - start;
  outcome.allocations = cluster.provisioner().stats().allocations_requested;
  const auto& registered = cluster.provisioner().registered_series();
  const auto& active = cluster.provisioner().active_series();
  const double alive = registered.integrate(start, end) +
                       active.integrate(start, end);
  outcome.utilization = alive > 0 ? std::min(1.0, 48 * 30.0 / alive) : 0.0;
  cluster.stop();
  return outcome;
}

/// Two bursts separated by an idle gap: release policies differ in whether
/// they keep executors through the gap (waste) or release and re-acquire
/// (latency).
Outcome run_bursty(double idle_timeout_s, int centralized_threshold) {
  ScaledClock clock(250.0);
  core::FalkonClusterConfig config;
  config.lrm.poll_interval_s = 20.0;
  config.lrm.submit_overhead_s = 0.5;
  config.lrm.dispatch_overhead_s = 3.0;
  config.lrm.cleanup_overhead_s = 2.0;
  config.lrm_nodes = 16;
  config.gram.request_overhead_s = 2.0;
  config.provisioner.max_executors = 16;
  config.provisioner.poll_interval_s = 1.0;
  config.executor_template.idle_timeout_s = idle_timeout_s;
  config.centralized_release_threshold = centralized_threshold;

  core::FalkonCluster cluster(clock, config);
  cluster.start_drivers();
  auto session = core::FalkonSession::open(cluster.client(), ClientId{1});
  Outcome outcome;
  if (!session.ok()) return outcome;

  auto burst = [&](std::uint64_t first_id) {
    std::vector<TaskSpec> tasks;
    for (std::uint64_t i = 0; i < 32; ++i) {
      tasks.push_back(make_sleep_task(TaskId{first_id + i}, 20.0));
    }
    return session.value()->submit(std::move(tasks));
  };

  const double start = clock.now_s();
  if (!burst(1).ok()) return outcome;
  if (!session.value()->wait(32, 1e6).ok()) return outcome;
  clock.sleep_s(90.0);  // idle gap longer than the short timeouts
  if (!burst(1000).ok()) return outcome;
  if (!session.value()->wait(32, 1e6).ok()) return outcome;
  const double end = clock.now_s();

  outcome.ok = true;
  outcome.makespan_s = end - start;
  outcome.allocations = cluster.provisioner().stats().allocations_requested;
  const auto& registered = cluster.provisioner().registered_series();
  const auto& active = cluster.provisioner().active_series();
  const double alive =
      registered.integrate(start, end) + active.integrate(start, end);
  outcome.utilization =
      alive > 0 ? std::min(1.0, 64 * 20.0 / alive) : 0.0;
  cluster.stop();
  return outcome;
}

void print_row(Table& table, const std::string& label, const Outcome& o) {
  if (!o.ok) {
    table.row({label, "FAILED", "-", "-"});
    return;
  }
  table.row({label, strf("%.0f s", o.makespan_s),
             strf("%llu", static_cast<unsigned long long>(o.allocations)),
             strf("%.0f%%", o.utilization * 100.0)});
}

}  // namespace

int main() {
  title("Ablation: resource acquisition policies (48 x sleep-30, 16 nodes)");
  Table table({"acquisition policy", "time to complete", "allocations",
               "utilization"});
  for (const char* policy :
       {"all-at-once", "one-at-a-time", "additive", "exponential",
        "available"}) {
    print_row(table, policy, run_policy(policy, 60.0, 0));
  }
  table.print();
  note("paper (section 4.6): all-at-once minimises allocation requests;"
       " one-at-a-time multiplies them through the ~0.5 req/s GRAM gateway"
       " and delays executor startup.");

  title("Ablation: release policies (two 32-task bursts, 90 s idle gap)");
  Table release({"release policy", "time to complete", "allocations",
                 "utilization"});
  print_row(release, "distributed, idle 15 s", run_bursty(15.0, 0));
  print_row(release, "distributed, idle 60 s", run_bursty(60.0, 0));
  print_row(release, "distributed, never (inf)", run_bursty(0.0, 0));
  print_row(release, "centralized, queue<4", run_bursty(0.0, 4));
  release.print();
  note("short idle timeouts release through the gap (higher utilization,"
       " extra allocation + re-acquisition latency); infinite retention"
       " holds idle executors (lower utilization, no re-acquisition) — the"
       " Table 3/4 trade-off in miniature.");
  return 0;
}
