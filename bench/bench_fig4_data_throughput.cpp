// Figure 4 / section 4.2: throughput as a function of data size on 64
// nodes (128 executors), for {GPFS, local disk} x {read, read+write}.
//
// The per-task staging time comes from the contention-calibrated IoModel;
// the end-to-end task rate comes from the DES with that staging time as the
// task length (the dispatch pipeline caps tiny-data throughput at ~487/s,
// exactly as in the paper).
//
// Paper anchors: task throughput within a few percent of 487/s up to 1 MB
// (GPFS read, LOCAL read/read+write); GPFS read+write capped at ~150/s even
// for 1-byte tasks; bandwidth plateaus 326 / 3,067 / 32,667 / 52,015 Mb/s;
// 1 GB rates 0.04 / 0.4 / 4.28 / 6.81 tasks/s.
#include "bench_util.h"
#include "common/clock.h"
#include "core/client.h"
#include "core/data_plane.h"
#include "core/policies.h"
#include "core/service_tcp.h"
#include "iomodel/io_model.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

constexpr int kExecutors = 128;

struct Config {
  const char* name;
  DataLocation location;
  IoMode mode;
  double paper_plateau_mbps;
  double paper_1gb_tasks_per_s;
};

double task_rate(const iomodel::IoModel& model, const TaskSpec& task,
                 std::uint64_t bytes) {
  sim::SimFalkonConfig sim_config;
  sim_config.executors = kExecutors;
  sim_config.task_length_s = model.io_time_s(task, kExecutors);
  // Size the run so it finishes quickly but reaches steady state.
  const double expected_rate =
      std::min(487.0, kExecutors / std::max(1e-9, sim_config.task_length_s));
  sim_config.task_count = static_cast<std::uint64_t>(
      std::max(64.0, std::min(20000.0, expected_rate * 30)));
  (void)bytes;
  return sim::simulate_falkon(sim_config).avg_throughput();
}

// ---- real-socket series: data diffusion over loopback TCP ----
//
// The sim curves above model the paper's 2007 testbed. This series runs the
// actual C++ data plane: a fleet of TCP executors with local DataPlane
// caches, reading+writing small GPFS objects — the workload the paper's
// Figure 4 shows ops-capped at ~150 tasks/s no matter how small the data.
// With good-cache-compute routing and warm caches, tasks run where their
// data lives (local-disk model time), escaping the shared-FS write cap;
// scripts/bench.sh gates warm >= 3x miss.

struct TcpOutcome {
  double tasks_per_s{0.0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t p2p_fetches{0};
};

TcpOutcome measure_tcp_data(bool warm, int executors, int objects,
                            std::uint64_t tasks, std::uint64_t object_bytes) {
  RealClock clock;
  core::DispatcherConfig dconfig;
  std::unique_ptr<core::DispatchPolicy> policy;
  if (warm) {
    dconfig.max_locality_wait_s = 0.25;
    policy = std::make_unique<core::GoodCacheComputePolicy>();
  }
  core::Dispatcher dispatcher(clock, dconfig, std::move(policy));
  core::TcpDispatcherServer server(dispatcher, nullptr);
  if (!server.start().ok()) return {};

  iomodel::IoModel model;
  struct Slot {
    std::unique_ptr<core::DataPlane> plane;
    core::P2pDataEngine* engine{nullptr};  // owned by the harness
    std::unique_ptr<core::TcpExecutorHarness> harness;
  };
  std::vector<Slot> fleet(static_cast<std::size_t>(executors));
  for (int e = 0; e < executors; ++e) {
    auto& cell = fleet[static_cast<std::size_t>(e)];
    core::DataPlaneOptions popts;
    // The miss series must stay all-miss: a 1-byte capacity rejects every
    // insert, so each task re-stages through the shared-FS model.
    if (!warm) popts.cache_capacity_bytes = 1;
    cell.plane = std::make_unique<core::DataPlane>(popts);
    if (warm) {
      // Partition the working set across the fleet — each object has
      // exactly one seeded holder, so throughput comes from routing, not
      // from universal replication.
      for (int o = e; o < objects; o += executors) {
        cell.plane->insert("object-" + std::to_string(o), object_bytes);
      }
    }
    auto engine = std::make_unique<core::P2pDataEngine>(
        clock, model, executors, *cell.plane);
    cell.engine = engine.get();
    core::ExecutorOptions eopts;
    eopts.node_id = NodeId{static_cast<std::uint64_t>(e + 1)};
    // The registered host seeds peer data_source endpoints, and the socket
    // layer speaks numeric IPv4 only.
    eopts.host = "127.0.0.1";
    eopts.data = cell.plane.get();
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::move(engine), eopts);
    if (!harness->start().ok()) return {};
    cell.harness = std::move(harness);
  }

  auto client = core::TcpDispatcherClient::connect("127.0.0.1",
                                                   server.rpc_port());
  if (!client.ok()) return {};
  auto session = core::FalkonSession::open(*client.value(), ClientId{1});
  if (!session.ok()) return {};

  std::vector<TaskSpec> specs;
  specs.reserve(tasks);
  for (std::uint64_t i = 1; i <= tasks; ++i) {
    TaskSpec task = make_data_task(TaskId{i}, /*compute_s=*/0.0,
                                   DataLocation::kSharedFs, IoMode::kReadWrite,
                                   object_bytes, object_bytes);
    task.data_object =
        "object-" + std::to_string(i % static_cast<std::uint64_t>(objects));
    task.capture_output = false;
    specs.push_back(std::move(task));
  }

  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 240.0);
  const double elapsed = clock.now_s() - start;

  TcpOutcome outcome;
  if (results.ok() && elapsed > 0) {
    outcome.tasks_per_s = static_cast<double>(tasks) / elapsed;
  }
  for (auto& cell : fleet) {
    outcome.cache_hits += cell.plane->cache_hits();
    outcome.cache_misses += cell.plane->cache_misses();
    outcome.p2p_fetches += cell.engine->p2p_fetches();
    cell.harness.reset();
  }
  dispatcher.shutdown();
  server.stop();
  return outcome;
}

}  // namespace

int main() {
  title("Figure 4: throughput vs data size, 128 executors on 64 nodes");

  iomodel::IoModel model;
  const Config configs[] = {
      {"GPFS read+write", DataLocation::kSharedFs, IoMode::kReadWrite, 326.0, 0.04},
      {"GPFS read", DataLocation::kSharedFs, IoMode::kRead, 3067.0, 0.4},
      {"LOCAL read+write", DataLocation::kLocalDisk, IoMode::kReadWrite, 32667.0, 4.28},
      {"LOCAL read", DataLocation::kLocalDisk, IoMode::kRead, 52015.0, 6.81},
  };

  for (const auto& config : configs) {
    title(config.name);
    Table table({"data size", "tasks/s", "Mb/s"});
    double peak_mbps = 0.0;
    double rate_1gb = 0.0;
    for (std::uint64_t bytes = 1; bytes <= (1ULL << 30); bytes *= 32) {
      auto task = make_data_task(TaskId{1}, 0.0, config.location, config.mode,
                                 bytes, bytes);
      const double rate = task_rate(model, task, bytes);
      const double moved = iomodel::bytes_to_megabits(
          bytes + (config.mode == IoMode::kReadWrite ? bytes : 0));
      const double mbps = rate * moved;
      peak_mbps = std::max(peak_mbps, mbps);
      if (bytes == (1ULL << 30)) rate_1gb = rate;
      table.row({human_bytes(bytes), strf("%.2f", rate), strf("%.0f", mbps)});
    }
    table.print();
    note(strf("bandwidth plateau: %.0f Mb/s (paper: %.0f Mb/s)", peak_mbps,
              config.paper_plateau_mbps));
    note(strf("1 GB task rate: %.2f tasks/s (paper: %.2f)", rate_1gb,
              config.paper_1gb_tasks_per_s));
  }

  note("note the GPFS read+write row: write contention through 8 I/O nodes"
       " caps task rate near 150/s even at 1 byte, as the paper observed.");

  title("Data diffusion over loopback TCP: 8 executors, 64 KiB read+write");
  note("real sockets, real DataPlane caches; the GPFS write-op cap that"
       " flattens the sim curve above is what the warm series escapes");
  obs::Obs obs;
  constexpr int kTcpExecutors = 8;
  constexpr int kObjects = 8;
  constexpr std::uint64_t kTasks = 480;
  constexpr std::uint64_t kObjectBytes = 64ULL << 10;
  Table tcp({"series", "tasks/s", "cache hit rate", "p2p fetches"});
  double series_rate[2] = {0.0, 0.0};
  for (int warm = 0; warm <= 1; ++warm) {
    const TcpOutcome outcome = measure_tcp_data(
        warm != 0, kTcpExecutors, kObjects, kTasks, kObjectBytes);
    series_rate[warm] = outcome.tasks_per_s;
    const auto total = outcome.cache_hits + outcome.cache_misses;
    obs.registry()
        .gauge("bench.fig4.tcp_tasks_per_s",
               {{"cache", warm != 0 ? "warm" : "miss"},
                {"executors", strf("%d", kTcpExecutors)}})
        .set(outcome.tasks_per_s);
    tcp.row({warm != 0 ? "good-cache-compute, warm" : "shared-FS, all-miss",
             strf("%.0f", outcome.tasks_per_s),
             strf("%.0f%%", total ? 100.0 * static_cast<double>(outcome.cache_hits) /
                                        static_cast<double>(total)
                                  : 0.0),
             strf("%llu", static_cast<unsigned long long>(outcome.p2p_fetches))});
  }
  tcp.print();
  note(strf("warm / miss throughput: %.1fx (scripts/bench.sh gates >= 3x)",
            series_rate[1] / std::max(1.0, series_rate[0])));
  if (obs::save_metrics_json(obs.registry(), "BENCH_fig4.json").ok()) {
    note("metrics snapshot: BENCH_fig4.json");
  }
  return 0;
}
