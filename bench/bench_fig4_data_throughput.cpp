// Figure 4 / section 4.2: throughput as a function of data size on 64
// nodes (128 executors), for {GPFS, local disk} x {read, read+write}.
//
// The per-task staging time comes from the contention-calibrated IoModel;
// the end-to-end task rate comes from the DES with that staging time as the
// task length (the dispatch pipeline caps tiny-data throughput at ~487/s,
// exactly as in the paper).
//
// Paper anchors: task throughput within a few percent of 487/s up to 1 MB
// (GPFS read, LOCAL read/read+write); GPFS read+write capped at ~150/s even
// for 1-byte tasks; bandwidth plateaus 326 / 3,067 / 32,667 / 52,015 Mb/s;
// 1 GB rates 0.04 / 0.4 / 4.28 / 6.81 tasks/s.
#include "bench_util.h"
#include "iomodel/io_model.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

constexpr int kExecutors = 128;

struct Config {
  const char* name;
  DataLocation location;
  IoMode mode;
  double paper_plateau_mbps;
  double paper_1gb_tasks_per_s;
};

double task_rate(const iomodel::IoModel& model, const TaskSpec& task,
                 std::uint64_t bytes) {
  sim::SimFalkonConfig sim_config;
  sim_config.executors = kExecutors;
  sim_config.task_length_s = model.io_time_s(task, kExecutors);
  // Size the run so it finishes quickly but reaches steady state.
  const double expected_rate =
      std::min(487.0, kExecutors / std::max(1e-9, sim_config.task_length_s));
  sim_config.task_count = static_cast<std::uint64_t>(
      std::max(64.0, std::min(20000.0, expected_rate * 30)));
  (void)bytes;
  return sim::simulate_falkon(sim_config).avg_throughput();
}

}  // namespace

int main() {
  title("Figure 4: throughput vs data size, 128 executors on 64 nodes");

  iomodel::IoModel model;
  const Config configs[] = {
      {"GPFS read+write", DataLocation::kSharedFs, IoMode::kReadWrite, 326.0, 0.04},
      {"GPFS read", DataLocation::kSharedFs, IoMode::kRead, 3067.0, 0.4},
      {"LOCAL read+write", DataLocation::kLocalDisk, IoMode::kReadWrite, 32667.0, 4.28},
      {"LOCAL read", DataLocation::kLocalDisk, IoMode::kRead, 52015.0, 6.81},
  };

  for (const auto& config : configs) {
    title(config.name);
    Table table({"data size", "tasks/s", "Mb/s"});
    double peak_mbps = 0.0;
    double rate_1gb = 0.0;
    for (std::uint64_t bytes = 1; bytes <= (1ULL << 30); bytes *= 32) {
      auto task = make_data_task(TaskId{1}, 0.0, config.location, config.mode,
                                 bytes, bytes);
      const double rate = task_rate(model, task, bytes);
      const double moved = iomodel::bytes_to_megabits(
          bytes + (config.mode == IoMode::kReadWrite ? bytes : 0));
      const double mbps = rate * moved;
      peak_mbps = std::max(peak_mbps, mbps);
      if (bytes == (1ULL << 30)) rate_1gb = rate;
      table.row({human_bytes(bytes), strf("%.2f", rate), strf("%.0f", mbps)});
    }
    table.print();
    note(strf("bandwidth plateau: %.0f Mb/s (paper: %.0f Mb/s)", peak_mbps,
              config.paper_plateau_mbps));
    note(strf("1 GB task rate: %.2f tasks/s (paper: %.2f)", rate_1gb,
              config.paper_1gb_tasks_per_s));
  }

  note("note the GPFS read+write row: write contention through 8 I/O nodes"
       " caps task rate near 150/s even at 1 byte, as the paper observed.");
  return 0;
}
