// Figure 16 / section 6: the three-tier architecture — client ->
// forwarder -> per-cluster dispatchers -> executors.
//
// The paper proposes this to scale beyond one dispatcher and to reach
// executors in private IP spaces. We measure what the hierarchy preserves
// and what it costs: task distribution across clusters, exactly-once
// completion, aggregate throughput vs a single flat dispatcher, and the
// modelled scaling argument (N dispatchers = N times the per-dispatcher
// WS-call budget, so the 487 tasks/s ceiling multiplies).
#include "bench_util.h"
#include "common/clock.h"
#include "core/forwarder.h"
#include "core/service.h"
#include "sim/sim_falkon.h"

namespace {

using namespace falkon;
using namespace falkon::bench;

struct Tier3Outcome {
  double tasks_per_s{0};
  std::vector<std::uint64_t> per_cluster;
};

Tier3Outcome run_three_tier(int clusters, int executors_per_cluster,
                            int tasks) {
  RealClock clock;
  std::vector<std::unique_ptr<core::InProcFalkon>> pools;
  std::vector<core::DispatcherClient*> clients;
  for (int c = 0; c < clusters; ++c) {
    auto pool = std::make_unique<core::InProcFalkon>(clock,
                                                     core::DispatcherConfig{});
    (void)pool->add_executors(
        executors_per_cluster,
        [](Clock&) { return std::make_unique<core::NoopEngine>(); },
        core::ExecutorOptions{});
    clients.push_back(&pool->client());
    pools.push_back(std::move(pool));
  }
  core::Forwarder forwarder(clients, core::RoutingPolicy::kRoundRobin);

  core::SessionOptions options;
  options.bundle_size = 100;
  auto session = core::FalkonSession::open(forwarder, ClientId{1}, options);
  Tier3Outcome outcome;
  if (!session.ok()) return outcome;
  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 120.0);
  const double elapsed = clock.now_s() - start;
  if (!results.ok() || elapsed <= 0) return outcome;
  outcome.tasks_per_s = tasks / elapsed;
  outcome.per_cluster = forwarder.routed_counts();
  return outcome;
}

}  // namespace

int main() {
  title("Figure 16 / section 6: three-tier architecture");

  title("measured on this host (in-proc clusters behind a forwarder)");
  Table table({"clusters", "executors each", "tasks/s", "distribution"});
  for (int clusters : {1, 2, 4}) {
    const auto outcome = run_three_tier(clusters, 2, 30000);
    std::string distribution;
    for (std::size_t c = 0; c < outcome.per_cluster.size(); ++c) {
      if (c > 0) distribution += "/";
      distribution += strf("%llu", static_cast<unsigned long long>(
                                       outcome.per_cluster[c]));
    }
    table.row({strf("%d", clusters), "2", strf("%.0f", outcome.tasks_per_s),
               distribution});
  }
  table.print();
  note("(single-core host: aggregate rates do not scale here, but routing"
       " balance and exactly-once semantics hold across the hierarchy)");

  title("2007-testbed model: per-dispatcher ceiling multiplies");
  Table model({"dispatchers", "executors total", "aggregate tasks/s"});
  for (int dispatchers : {1, 2, 4, 8}) {
    // Each dispatcher owns its own CPU budget; the forwarder adds only a
    // per-bundle hop. Aggregate = sum of independent per-cluster sims.
    double total = 0.0;
    for (int d = 0; d < dispatchers; ++d) {
      total += sim::falkon_throughput(64, false, 20000);
    }
    model.row({strf("%d", dispatchers), strf("%d", dispatchers * 64),
               strf("%.0f", total)});
  }
  model.print();
  note("the paper targets 'two or more orders of magnitude more executors'"
       " (BlueGene/P, 256K CPUs): ~500 tasks/s per dispatcher times the"
       " dispatcher fan-out.");
  return 0;
}
