// Google-benchmark microbenchmarks for the hot paths of this C++
// implementation: codec, framing, dispatcher operations, the end-to-end
// in-process dispatch cycle, and the DES engine.
#include <benchmark/benchmark.h>
#include <dirent.h>
#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/clock.h"
#include "common/queue.h"
#include "core/client.h"
#include "core/service.h"
#include "core/service_tcp.h"
#include "ha/failover_client.h"
#include "ha/journal.h"
#include "ha/standby.h"
#include "ha/wal.h"
#include "net/socket.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "wire/framing.h"
#include "wire/message.h"

namespace {

using namespace falkon;

/// Shared observability context: instrumented benchmark variants record
/// into it, and main() writes the accumulated registry to BENCH_micro.json.
obs::Obs& bench_obs() {
  static obs::Obs obs;
  return obs;
}

TaskSpec sample_task(std::uint64_t id) {
  TaskSpec spec = make_sleep_task(TaskId{id}, 0.0);
  spec.working_dir = "/tmp/run";
  spec.env = {{"PATH", "/usr/bin"}};
  return spec;
}

void BM_EncodeSubmitBundle(benchmark::State& state) {
  wire::SubmitRequest request;
  request.instance_id = InstanceId{1};
  for (int i = 0; i < state.range(0); ++i) {
    request.tasks.push_back(sample_task(static_cast<std::uint64_t>(i) + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_message(request));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeSubmitBundle)->Arg(1)->Arg(100)->Arg(1000);

void BM_DecodeSubmitBundle(benchmark::State& state) {
  wire::SubmitRequest request;
  request.instance_id = InstanceId{1};
  for (int i = 0; i < state.range(0); ++i) {
    request.tasks.push_back(sample_task(static_cast<std::uint64_t>(i) + 1));
  }
  const auto bytes = wire::encode_message(request);
  for (auto _ : state) {
    auto decoded = wire::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeSubmitBundle)->Arg(1)->Arg(100)->Arg(1000);

void BM_BlockingQueuePushPop(benchmark::State& state) {
  BlockingQueue<int> queue;
  for (auto _ : state) {
    (void)queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockingQueuePushPop);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter& counter = bench_obs().registry().counter("bench.micro.counter");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc)->ThreadRange(1, 8);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& hist =
      bench_obs().registry().histogram("bench.micro.histogram", 1e-6, 1e2);
  double v = 1e-5;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1.0 ? v * 1.001 : 1e-5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord)->ThreadRange(1, 8);

void BM_ObsTracerRecord(benchmark::State& state) {
  static obs::Tracer tracer(1 << 16);
  std::uint64_t id = 0;
  for (auto _ : state) {
    tracer.record(TaskId{++id}, obs::Stage::kExec, 0.0, 1.0, 7);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTracerRecord)->ThreadRange(1, 8);

/// One dispatcher protocol cycle: get_work + deliver_results with
/// piggy-backing (the 2-messages-per-task steady state of section 3.4).
/// The /obs variant runs the same cycle with the metrics registry attached
/// — the delta is the total instrumentation cost per task.
template <bool kWithObs>
void BM_DispatcherCycle(benchmark::State& state) {
  ManualClock clock;
  core::DispatcherConfig config;
  if (kWithObs) config.obs = &bench_obs();
  core::Dispatcher dispatcher(clock, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  struct NullSink final : core::ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto executor = dispatcher.register_executor(wire::RegisterRequest{},
                                               std::make_shared<NullSink>());
  std::uint64_t next_id = 1;
  std::vector<TaskSpec> seed;
  seed.push_back(make_noop_task(TaskId{next_id++}));
  (void)dispatcher.submit(instance.value(), seed);
  auto work = dispatcher.get_work(executor.value(), 1);
  TaskSpec current = work.value()[0];

  for (auto _ : state) {
    // Keep exactly one task queued so the piggy-back path always hits.
    std::vector<TaskSpec> refill;
    refill.push_back(make_noop_task(TaskId{next_id++}));
    (void)dispatcher.submit(instance.value(), refill);
    TaskResult result;
    result.task_id = current.id;
    auto outcome = dispatcher.deliver_results(executor.value(), {result}, 1);
    current = outcome.value().piggyback[0];
    // Drain the client mailbox so it does not grow unboundedly.
    (void)dispatcher.wait_results(instance.value(), 64, 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatcherCycle<false>)->Name("BM_DispatcherCycle");
BENCHMARK(BM_DispatcherCycle<true>)->Name("BM_DispatcherCycle/obs");

/// Full in-process end-to-end: client -> dispatcher -> executor threads ->
/// results. Items/sec here is this implementation's "Figure 3" number.
void BM_EndToEndInProc(benchmark::State& state) {
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  (void)falkon.add_executors(
      static_cast<int>(state.range(0)),
      [](Clock&) { return std::make_unique<core::NoopEngine>(); },
      core::ExecutorOptions{});
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  std::uint64_t next_id = 1;
  constexpr int kBatch = 1000;
  for (auto _ : state) {
    std::vector<TaskSpec> tasks;
    tasks.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      tasks.push_back(make_noop_task(TaskId{next_id++}));
    }
    auto results = session.value()->run(std::move(tasks), 60.0);
    if (!results.ok()) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EndToEndInProc)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// Parse an integer field ("Threads:", "VmRSS:") out of /proc/self/status.
long proc_self_status(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long value = -1;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      value = std::strtol(line + field_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

long open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  long count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count - 2;  // "." and ".."
}

/// Connection-scale probe: N idle executors registered and subscribed over
/// real TCP against one TcpDispatcherServer, then one task cycled through
/// the fleet per iteration. The client side uses raw blocking sockets (two
/// per executor, zero threads), so the process totals isolate the server's
/// per-connection cost: with the reactor the Threads counter must stay flat
/// from N=16 to N=1024 — connections live in one epoll set, not one reader
/// thread each. Counters:
///   threads / fds / rss_mb    process totals after the fleet is up
///   rss_per_conn_kb           (RSS after fleet - RSS before) / connections;
///                             both stream ends are in-process, so this is
///                             the marginal footprint of one reactor-owned
///                             connection plus its raw client socket
///   notify_us                 submit() returning -> Notify frame readable
///   getwork_us                Notify -> GetWorkReply with the task in hand
void BM_ConnectionScale(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RealClock clock;
  core::DispatcherConfig config;
  core::Dispatcher dispatcher(clock, config);
  core::TcpDispatcherServer server(dispatcher);
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  const long rss_before_kb = proc_self_status("VmRSS:");

  struct ProbeExecutor {
    net::TcpStream rpc;
    net::TcpStream push;
    ExecutorId id;
  };
  std::vector<ProbeExecutor> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  wire::Frame frame;
  auto roundtrip = [&frame](net::TcpStream& stream,
                            const wire::Message& request)
      -> Result<wire::Message> {
    if (auto status =
            wire::write_frame(stream, 1, wire::encode_message(request));
        !status.ok()) {
      return status.error();
    }
    if (auto status = wire::read_frame(stream, frame); !status.ok()) {
      return status.error();
    }
    return wire::decode_message(frame.payload);
  };
  for (int e = 0; e < n; ++e) {
    ProbeExecutor executor;
    auto rpc = net::TcpStream::connect("127.0.0.1", server.rpc_port());
    auto push = net::TcpStream::connect("127.0.0.1", server.push_port());
    if (!rpc.ok() || !push.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    executor.rpc = rpc.take();
    executor.push = push.take();
    wire::RegisterRequest reg;
    reg.node_id = NodeId{static_cast<std::uint64_t>(e) + 1};
    reg.host = "probe";
    auto reply = roundtrip(executor.rpc, reg);
    if (!reply.ok() ||
        !std::holds_alternative<wire::RegisterReply>(reply.value())) {
      state.SkipWithError("register failed");
      return;
    }
    executor.id = std::get<wire::RegisterReply>(reply.value()).executor_id;
    wire::Notify subscribe;
    subscribe.executor_id = executor.id;
    if (!wire::write_frame(executor.push, wire::encode_message(subscribe))
             .ok()) {
      state.SkipWithError("subscribe failed");
      return;
    }
    fleet.push_back(std::move(executor));
  }

  auto client = core::TcpDispatcherClient::connect("127.0.0.1",
                                                   server.rpc_port());
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  auto instance = client.value()->create_instance(ClientId{1});
  if (!instance.ok()) {
    state.SkipWithError("create_instance failed");
    return;
  }

  const long threads = proc_self_status("Threads:");
  const long fds = open_fd_count();
  const long rss_kb = proc_self_status("VmRSS:");
  // Each probe executor is two TCP connections (RPC + push), and each
  // connection has both its reactor-owned end and its raw client end in
  // this process.
  const double rss_per_conn_kb =
      std::max(0.0, static_cast<double>(rss_kb - rss_before_kb)) /
      (2.0 * static_cast<double>(n));

  std::vector<pollfd> pollfds(static_cast<std::size_t>(n));
  for (int e = 0; e < n; ++e) {
    pollfds[static_cast<std::size_t>(e)] = {fleet[e].push.fd(), POLLIN, 0};
  }
  std::uint64_t next_task = 1;
  double notify_s = 0.0;
  double getwork_s = 0.0;
  using Ticker = std::chrono::steady_clock;
  auto seconds_since = [](Ticker::time_point start) {
    return std::chrono::duration<double>(Ticker::now() - start).count();
  };
  wire::Frame push_frame;
  for (auto _ : state) {
    std::vector<TaskSpec> tasks;
    tasks.push_back(make_noop_task(TaskId{next_task++}));
    const auto t0 = Ticker::now();
    if (!client.value()->submit(instance.value(), std::move(tasks)).ok()) {
      state.SkipWithError("submit failed");
      return;
    }
    // The dispatcher notifies one idle executor; wait for whichever push
    // socket turns readable, then drive that executor's RPC connection.
    int woken = -1;
    while (woken < 0) {
      if (::poll(pollfds.data(), pollfds.size(), 5000) <= 0) {
        state.SkipWithError("no notify within 5s");
        return;
      }
      for (int e = 0; e < n; ++e) {
        if (pollfds[static_cast<std::size_t>(e)].revents & POLLIN) {
          woken = e;
          break;
        }
      }
    }
    notify_s += seconds_since(t0);
    if (!wire::read_frame(fleet[woken].push, push_frame).ok()) {
      state.SkipWithError("push read failed");
      return;
    }
    const auto t1 = Ticker::now();
    wire::GetWorkRequest get;
    get.executor_id = fleet[woken].id;
    get.max_tasks = 1;
    auto work = roundtrip(fleet[woken].rpc, get);
    if (!work.ok() ||
        !std::holds_alternative<wire::GetWorkReply>(work.value()) ||
        std::get<wire::GetWorkReply>(work.value()).tasks.size() != 1) {
      state.SkipWithError("get_work failed");
      return;
    }
    getwork_s += seconds_since(t1);
    wire::ResultRequest done;
    done.executor_id = fleet[woken].id;
    TaskResult result;
    result.task_id = std::get<wire::GetWorkReply>(work.value()).tasks[0].id;
    done.results.push_back(result);
    if (!roundtrip(fleet[woken].rpc, done).ok()) {
      state.SkipWithError("deliver failed");
      return;
    }
    if (!client.value()->wait_results(instance.value(), 64, 5.0).ok()) {
      state.SkipWithError("wait_results failed");
      return;
    }
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["fds"] = static_cast<double>(fds);
  state.counters["rss_mb"] = static_cast<double>(rss_kb) / 1024.0;
  state.counters["rss_per_conn_kb"] = rss_per_conn_kb;
  state.counters["notify_us"] = notify_s / iters * 1e6;
  state.counters["getwork_us"] = getwork_s / iters * 1e6;
  auto& registry = bench_obs().registry();
  const auto label = std::to_string(n);
  registry.gauge("bench.micro.connscale.threads", {{"executors", label}})
      .set(static_cast<double>(threads));
  registry.gauge("bench.micro.connscale.fds", {{"executors", label}})
      .set(static_cast<double>(fds));
  registry.gauge("bench.micro.connscale.rss_mb", {{"executors", label}})
      .set(static_cast<double>(rss_kb) / 1024.0);
  registry.gauge("bench.micro.connscale.rss_per_conn_kb",
                 {{"executors", label}})
      .set(rss_per_conn_kb);
  registry.gauge("bench.micro.connscale.notify_us", {{"executors", label}})
      .set(notify_s / iters * 1e6);
}
BENCHMARK(BM_ConnectionScale)->Arg(16)->Arg(256)->Arg(1024)->Iterations(200);

/// WAL append cost per fsync policy (docs/HA.md): 128-byte records, one
/// append per iteration, into a fresh temp-dir log. Arg maps onto
/// ha::FsyncPolicy — 0 none, 1 every-record, 2 group-commit — so the
/// spread between Arg(0) and Arg(1) is the durability price per record.
void BM_WalAppend(benchmark::State& state) {
  const auto policy = static_cast<ha::FsyncPolicy>(state.range(0));
  char tmpl[] = "/tmp/falkon_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const std::string dir = tmpl;
  ha::WalOptions options;
  options.dir = dir;
  options.fsync = policy;
  options.group_commit_interval_s = 0.005;
  auto wal = ha::Wal::open(options);
  if (!wal.ok()) {
    state.SkipWithError("wal open failed");
  } else {
    const std::vector<std::uint8_t> payload(128, 0xAB);
    using Ticker = std::chrono::steady_clock;
    const auto t0 = Ticker::now();
    for (auto _ : state) {
      if (!wal.value()->append(payload).ok()) {
        state.SkipWithError("append failed");
        break;
      }
    }
    const double elapsed_s =
        std::chrono::duration<double>(Ticker::now() - t0).count();
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(payload.size()));
    if (elapsed_s > 0.0) {
      bench_obs()
          .registry()
          .gauge("bench.micro.wal.appends_per_s",
                 {{"fsync", ha::fsync_policy_name(policy)}})
          .set(static_cast<double>(state.iterations()) / elapsed_s);
    }
    wal.value().reset();
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Arg(2);

/// Measured failover downtime (docs/HA.md): a journaled primary with a warm
/// standby sharing its log directory, queued-but-unserved tasks as state to
/// recover, then the primary dies and the probe times kill -> a
/// FailoverClient status() answered by the promoted standby on the same
/// port. Manual time, so the reported ms IS the client-visible outage.
void BM_HaFailoverDowntime(benchmark::State& state) {
  namespace fs = std::filesystem;
  double last_downtime_s = 0.0;
  for (auto _ : state) {
    char primary_tmpl[] = "/tmp/falkon_bench_ha_p_XXXXXX";
    char standby_tmpl[] = "/tmp/falkon_bench_ha_s_XXXXXX";
    if (::mkdtemp(primary_tmpl) == nullptr ||
        ::mkdtemp(standby_tmpl) == nullptr) {
      state.SkipWithError("mkdtemp failed");
      return;
    }
    const std::string primary_dir = primary_tmpl;
    const std::string standby_dir = standby_tmpl;
    RealClock clock;

    ha::Journal::Options jopts;
    jopts.dir = primary_dir;
    auto journal = ha::Journal::open(jopts);
    if (!journal.ok()) {
      state.SkipWithError("journal open failed");
      return;
    }
    core::DispatcherConfig config;
    config.journal = journal.value().get();
    auto dispatcher = std::make_unique<core::Dispatcher>(clock, config);
    auto server = std::make_unique<core::TcpDispatcherServer>(*dispatcher);
    if (!server->start().ok()) {
      state.SkipWithError("server start failed");
      return;
    }
    server->set_replication_source(journal.value().get());

    ha::StandbyOptions sopts;
    sopts.primary_rpc_port = server->rpc_port();
    sopts.takeover_rpc_port = server->rpc_port();
    sopts.takeover_push_port = server->push_port();
    sopts.shared_log_dir = primary_dir;
    sopts.standby_dir = standby_dir;
    sopts.poll_interval_s = 0.01;
    sopts.failover_after_s = 0.2;
    ha::Standby standby(clock, sopts);
    if (!standby.start().ok()) {
      state.SkipWithError("standby start failed");
      return;
    }

    ha::FailoverClientOptions copts;
    copts.rpc_port = server->rpc_port();
    ha::FailoverClient client(copts);
    auto instance = client.create_instance(ClientId{1});
    if (!instance.ok()) {
      state.SkipWithError("create_instance failed");
      return;
    }
    std::vector<TaskSpec> tasks;
    for (std::uint64_t i = 1; i <= 64; ++i) {
      tasks.push_back(make_noop_task(TaskId{i}));
    }
    if (!client.submit(instance.value(), std::move(tasks)).ok()) {
      state.SkipWithError("submit failed");
      return;
    }
    // Let the standby catch up so promotion replays a warm log.
    const auto catchup_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (standby.applied_lsn() < journal.value()->last_lsn() &&
           std::chrono::steady_clock::now() < catchup_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    const auto t0 = std::chrono::steady_clock::now();
    server->stop();
    server.reset();
    dispatcher->shutdown();
    dispatcher.reset();
    journal.value().reset();
    // One FailoverClient call rides out the outage internally (reconnect +
    // backoff) and returns as soon as the promoted standby answers.
    if (!client.status().ok()) {
      state.SkipWithError("post-failover status failed");
      return;
    }
    last_downtime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    state.SetIterationTime(last_downtime_s);

    standby.stop();
    std::error_code ec;
    fs::remove_all(primary_dir, ec);
    fs::remove_all(standby_dir, ec);
  }
  bench_obs()
      .registry()
      .gauge("bench.micro.ha.failover_downtime_ms")
      .set(last_downtime_s * 1e3);
}
BENCHMARK(BM_HaFailoverDowntime)
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 100000;
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.schedule_in(0.001, chain);
    };
    sim.schedule_at(0.0, chain);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulationEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Registry snapshot of the instrumented runs, BENCH_*.json style.
  if (obs::save_metrics_json(bench_obs().registry(), "BENCH_micro.json").ok()) {
    std::printf("metrics snapshot: BENCH_micro.json\n");
  }
  return 0;
}
