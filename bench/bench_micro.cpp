// Google-benchmark microbenchmarks for the hot paths of this C++
// implementation: codec, framing, dispatcher operations, the end-to-end
// in-process dispatch cycle, and the DES engine.
#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "common/queue.h"
#include "core/client.h"
#include "core/service.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "wire/message.h"

namespace {

using namespace falkon;

/// Shared observability context: instrumented benchmark variants record
/// into it, and main() writes the accumulated registry to BENCH_micro.json.
obs::Obs& bench_obs() {
  static obs::Obs obs;
  return obs;
}

TaskSpec sample_task(std::uint64_t id) {
  TaskSpec spec = make_sleep_task(TaskId{id}, 0.0);
  spec.working_dir = "/tmp/run";
  spec.env = {{"PATH", "/usr/bin"}};
  return spec;
}

void BM_EncodeSubmitBundle(benchmark::State& state) {
  wire::SubmitRequest request;
  request.instance_id = InstanceId{1};
  for (int i = 0; i < state.range(0); ++i) {
    request.tasks.push_back(sample_task(static_cast<std::uint64_t>(i) + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_message(request));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeSubmitBundle)->Arg(1)->Arg(100)->Arg(1000);

void BM_DecodeSubmitBundle(benchmark::State& state) {
  wire::SubmitRequest request;
  request.instance_id = InstanceId{1};
  for (int i = 0; i < state.range(0); ++i) {
    request.tasks.push_back(sample_task(static_cast<std::uint64_t>(i) + 1));
  }
  const auto bytes = wire::encode_message(request);
  for (auto _ : state) {
    auto decoded = wire::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeSubmitBundle)->Arg(1)->Arg(100)->Arg(1000);

void BM_BlockingQueuePushPop(benchmark::State& state) {
  BlockingQueue<int> queue;
  for (auto _ : state) {
    (void)queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockingQueuePushPop);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter& counter = bench_obs().registry().counter("bench.micro.counter");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc)->ThreadRange(1, 8);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& hist =
      bench_obs().registry().histogram("bench.micro.histogram", 1e-6, 1e2);
  double v = 1e-5;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1.0 ? v * 1.001 : 1e-5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord)->ThreadRange(1, 8);

void BM_ObsTracerRecord(benchmark::State& state) {
  static obs::Tracer tracer(1 << 16);
  std::uint64_t id = 0;
  for (auto _ : state) {
    tracer.record(TaskId{++id}, obs::Stage::kExec, 0.0, 1.0, 7);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTracerRecord)->ThreadRange(1, 8);

/// One dispatcher protocol cycle: get_work + deliver_results with
/// piggy-backing (the 2-messages-per-task steady state of section 3.4).
/// The /obs variant runs the same cycle with the metrics registry attached
/// — the delta is the total instrumentation cost per task.
template <bool kWithObs>
void BM_DispatcherCycle(benchmark::State& state) {
  ManualClock clock;
  core::DispatcherConfig config;
  if (kWithObs) config.obs = &bench_obs();
  core::Dispatcher dispatcher(clock, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  struct NullSink final : core::ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto executor = dispatcher.register_executor(wire::RegisterRequest{},
                                               std::make_shared<NullSink>());
  std::uint64_t next_id = 1;
  std::vector<TaskSpec> seed;
  seed.push_back(make_noop_task(TaskId{next_id++}));
  (void)dispatcher.submit(instance.value(), seed);
  auto work = dispatcher.get_work(executor.value(), 1);
  TaskSpec current = work.value()[0];

  for (auto _ : state) {
    // Keep exactly one task queued so the piggy-back path always hits.
    std::vector<TaskSpec> refill;
    refill.push_back(make_noop_task(TaskId{next_id++}));
    (void)dispatcher.submit(instance.value(), refill);
    TaskResult result;
    result.task_id = current.id;
    auto outcome = dispatcher.deliver_results(executor.value(), {result}, 1);
    current = outcome.value().piggyback[0];
    // Drain the client mailbox so it does not grow unboundedly.
    (void)dispatcher.wait_results(instance.value(), 64, 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatcherCycle<false>)->Name("BM_DispatcherCycle");
BENCHMARK(BM_DispatcherCycle<true>)->Name("BM_DispatcherCycle/obs");

/// Full in-process end-to-end: client -> dispatcher -> executor threads ->
/// results. Items/sec here is this implementation's "Figure 3" number.
void BM_EndToEndInProc(benchmark::State& state) {
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  (void)falkon.add_executors(
      static_cast<int>(state.range(0)),
      [](Clock&) { return std::make_unique<core::NoopEngine>(); },
      core::ExecutorOptions{});
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  std::uint64_t next_id = 1;
  constexpr int kBatch = 1000;
  for (auto _ : state) {
    std::vector<TaskSpec> tasks;
    tasks.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      tasks.push_back(make_noop_task(TaskId{next_id++}));
    }
    auto results = session.value()->run(std::move(tasks), 60.0);
    if (!results.ok()) state.SkipWithError("run failed");
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EndToEndInProc)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 100000;
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.schedule_in(0.001, chain);
    };
    sim.schedule_at(0.0, chain);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulationEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Registry snapshot of the instrumented runs, BENCH_*.json style.
  if (obs::save_metrics_json(bench_obs().registry(), "BENCH_micro.json").ok()) {
    std::printf("metrics snapshot: BENCH_micro.json\n");
  }
  return 0;
}
