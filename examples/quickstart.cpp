// Quickstart: stand up an in-process Falkon service, submit a bundle of
// real shell tasks, and collect their results.
//
//   $ ./quickstart [num_executors] [num_tasks]
//
// This is the smallest end-to-end use of the public API:
//   1. create an InProcFalkon (dispatcher + executor pool),
//   2. open a FalkonSession (the factory/instance "EPR" of the paper),
//   3. submit tasks (bundled automatically),
//   4. wait for results.
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "common/logging.h"
#include "core/client.h"
#include "core/service.h"

using namespace falkon;

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kInfo);
  const int executors = argc > 1 ? std::atoi(argv[1]) : 4;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : 20;

  // 1. Dispatcher plus a pool of executors running real processes.
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  auto shell_engine = [](Clock&) { return std::make_unique<core::ShellEngine>(); };
  if (auto status = falkon.add_executors(executors, shell_engine,
                                         core::ExecutorOptions{});
      !status.ok()) {
    std::fprintf(stderr, "failed to start executors: %s\n",
                 status.error().str().c_str());
    return 1;
  }

  // 2. A client session (one dispatcher instance).
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  if (!session.ok()) {
    std::fprintf(stderr, "failed to open session: %s\n",
                 session.error().str().c_str());
    return 1;
  }

  // 3. Submit a bundle of shell tasks.
  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    TaskSpec task;
    task.id = TaskId{static_cast<std::uint64_t>(i)};
    task.executable = "/bin/sh";
    task.args = {"-c", "echo hello from task " + std::to_string(i) +
                           " on pid $$"};
    task.capture_output = true;
    specs.push_back(std::move(task));
  }

  // 4. Run and print.
  auto results = session.value()->run(std::move(specs), /*deadline_s=*/30.0);
  if (!results.ok()) {
    std::fprintf(stderr, "run failed: %s\n", results.error().str().c_str());
    return 1;
  }
  for (const auto& result : results.value()) {
    std::printf("task %llu exit=%d stdout: %s",
                static_cast<unsigned long long>(result.task_id.value),
                result.exit_code, result.stdout_data.c_str());
  }
  const auto status = falkon.dispatcher().status();
  std::printf("\ncompleted %llu tasks across %d executors\n",
              static_cast<unsigned long long>(status.completed), executors);
  return 0;
}
