// Distributed deployment over TCP (the paper's real topology): a
// dispatcher serving WS-style RPC plus a push-notification channel, remote
// executors, and a remote client — all over loopback here, but every byte
// crosses real sockets using the Falkon wire protocol.
//
//   $ ./tcp_cluster [executors] [tasks]
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "common/logging.h"
#include "core/client.h"
#include "core/service_tcp.h"

using namespace falkon;

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kInfo);
  const int executors = argc > 1 ? std::atoi(argv[1]) : 4;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : 1000;

  RealClock clock;
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  core::TcpDispatcherServer server(dispatcher);
  if (auto status = server.start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.error().str().c_str());
    return 1;
  }
  std::printf("dispatcher up: rpc port %u, notification port %u\n",
              server.rpc_port(), server.push_port());

  std::vector<std::unique_ptr<core::TcpExecutorHarness>> pool;
  for (int e = 0; e < executors; ++e) {
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<core::NoopEngine>(), core::ExecutorOptions{});
    if (auto status = harness->start(); !status.ok()) {
      std::fprintf(stderr, "executor start failed: %s\n",
                   status.error().str().c_str());
      return 1;
    }
    pool.push_back(std::move(harness));
  }
  std::printf("%d executors registered over TCP\n", executors);

  // Passing the push port opts the client into push-mode result streaming:
  // drained mailbox batches arrive as pushed ResultStream frames instead of
  // one WaitResults long-poll per batch (docs/PROTOCOL.md). Drop the third
  // argument to fall back to pure polling (e.g. through a firewall).
  auto client = core::TcpDispatcherClient::connect(
      "127.0.0.1", server.rpc_port(), server.push_port());
  if (!client.ok()) return 1;
  auto session = core::FalkonSession::open(*client.value(), ClientId{1});
  if (!session.ok()) return 1;

  std::vector<TaskSpec> specs;
  for (int i = 1; i <= tasks; ++i) {
    specs.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
  }
  const double start = clock.now_s();
  auto results = session.value()->run(std::move(specs), 60.0);
  const double elapsed = clock.now_s() - start;
  if (!results.ok()) {
    std::fprintf(stderr, "run failed: %s\n", results.error().str().c_str());
    return 1;
  }
  std::printf("%d tasks in %.3f s over loopback TCP: %.0f tasks/s\n", tasks,
              elapsed, tasks / elapsed);
  std::printf("(the 2007 Java/GT4 original peaked at 487 tasks/s)\n");

  pool.clear();
  server.stop();
  return 0;
}
