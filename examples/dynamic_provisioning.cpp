// Dynamic resource provisioning demo (paper section 4.6): the full
// multi-level scheduling stack — dispatcher, provisioner, GRAM4 gateway,
// PBS-like batch scheduler — reacting to a bursty workload.
//
//   $ ./dynamic_provisioning [idle_timeout_s] [max_executors]
//
// Submits three bursts of tasks separated by idle gaps and prints the
// provisioner's allocated/registered/active trace (the Figure 12/13 view):
// watch executors get acquired on demand and released after the idle
// timeout.
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "core/service.h"

using namespace falkon;

int main(int argc, char** argv) {
  const double idle_timeout = argc > 1 ? std::atof(argv[1]) : 30.0;
  const int max_executors = argc > 2 ? std::atoi(argv[2]) : 16;

  ScaledClock clock(100.0);  // 1 model second = 10 ms real

  core::FalkonClusterConfig config;
  config.lrm.poll_interval_s = 20.0;
  config.lrm.submit_overhead_s = 0.5;
  config.lrm.dispatch_overhead_s = 3.0;
  config.lrm.cleanup_overhead_s = 2.0;
  config.lrm_nodes = max_executors;
  config.gram.request_overhead_s = 2.0;
  config.provisioner.max_executors = max_executors;
  config.provisioner.poll_interval_s = 1.0;
  config.executor_template.idle_timeout_s = idle_timeout;

  core::FalkonCluster cluster(clock, config);
  cluster.start_drivers();

  auto session = core::FalkonSession::open(cluster.client(), ClientId{1});
  if (!session.ok()) return 1;

  std::uint64_t next_id = 1;
  auto burst = [&](int tasks, double length_s) {
    std::vector<TaskSpec> specs;
    for (int i = 0; i < tasks; ++i) {
      specs.push_back(make_sleep_task(TaskId{next_id++}, length_s));
    }
    std::printf("t=%6.0f  submitting burst of %d x sleep-%.0f\n",
                clock.now_s(), tasks, length_s);
    (void)session.value()->submit(std::move(specs));
  };

  burst(24, 20.0);
  auto results = session.value()->wait(24, 1e6);
  std::printf("t=%6.0f  burst 1 done (%zu results)\n", clock.now_s(),
              results.ok() ? results.value().size() : 0);

  clock.sleep_s(idle_timeout + 40.0);  // idle gap: executors release

  burst(8, 10.0);
  results = session.value()->wait(8, 1e6);
  std::printf("t=%6.0f  burst 2 done\n", clock.now_s());

  clock.sleep_s(idle_timeout + 40.0);

  burst(32, 5.0);
  results = session.value()->wait(32, 1e6);
  std::printf("t=%6.0f  burst 3 done\n", clock.now_s());

  cluster.stop();

  const auto& allocated = cluster.provisioner().allocated_series();
  const auto& registered = cluster.provisioner().registered_series();
  const auto& active = cluster.provisioner().active_series();
  std::printf("\n%8s %10s %11s %8s\n", "time(s)", "allocated", "registered",
              "active");
  const double end = active.last_time();
  for (double t = 0; t <= end; t += 15.0) {
    std::printf("%8.0f %10.0f %11.0f %8.0f\n", t, allocated.sample(t),
                registered.sample(t), active.sample(t));
  }
  const auto stats = cluster.provisioner().stats();
  std::printf("\nallocations requested: %llu, executors launched: %llu,"
              " executors released: %llu\n",
              static_cast<unsigned long long>(stats.allocations_requested),
              static_cast<unsigned long long>(stats.executors_launched),
              static_cast<unsigned long long>(stats.executors_exited));
  return 0;
}
