// fMRI AIRSN pipeline (paper section 5.1) through the Swift-lite workflow
// engine on a Falkon executor pool.
//
//   $ ./fmri_pipeline [volumes] [executors]
//
// Builds the four-step per-volume task graph, executes it with dependency
// tracking, and prints per-stage timing — the workload behind Figure 14.
// Runs on a 200x compressed clock so a multi-minute pipeline finishes in
// seconds.
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "core/service.h"
#include "workflow/engine.h"
#include "workflow/workloads.h"

using namespace falkon;

int main(int argc, char** argv) {
  const int volumes = argc > 1 ? std::atoi(argv[1]) : 120;
  const int executors = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto graph = workflow::make_fmri_workflow(volumes);
  std::printf("fMRI AIRSN: %d volumes -> %zu tasks in %zu stages, %.0f CPU-s\n",
              volumes, graph.size(), graph.stages().size(),
              graph.total_cpu_s());

  ScaledClock clock(200.0);  // 1 model second = 5 ms
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  auto engine_factory = [](Clock& c) {
    return std::make_unique<core::SleepEngine>(c);
  };
  if (!falkon.add_executors(executors, engine_factory, core::ExecutorOptions{})
           .ok()) {
    std::fprintf(stderr, "executor startup failed\n");
    return 1;
  }

  workflow::FalkonProvider provider(falkon.client(), ClientId{1});
  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.deadline_s = 1e6;
  auto stats = engine.run(graph, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n", stats.error().str().c_str());
    return 1;
  }

  std::printf("\n%-10s %8s %12s %12s\n", "stage", "tasks", "avg exec(s)",
              "done at(s)");
  for (const auto& stage : graph.stages()) {
    const auto& s = stats.value().stages.at(stage);
    std::printf("%-10s %8zu %12.2f %12.1f\n", stage.c_str(), s.tasks,
                s.exec_time.mean(), s.last_done_s);
  }
  std::printf("\nmakespan: %.1f model-seconds on %d executors"
              " (ideal: %.1f, efficiency %.0f%%)\n",
              stats.value().makespan_s, executors,
              graph.ideal_makespan_s(executors),
              100.0 * graph.ideal_makespan_s(executors) /
                  stats.value().makespan_s);
  return 0;
}
