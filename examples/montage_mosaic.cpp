// Montage astronomical mosaic workflow (paper section 5.2) through the
// Swift-lite engine on Falkon.
//
//   $ ./montage_mosaic [input_images] [overlaps] [executors]
//
// Builds the seven-stage M16 mosaic task graph (mProject -> mDiff -> mFit
// -> mBgModel -> mBackground -> mAddSub -> mAdd) and executes it, printing
// the per-stage breakdown of Figure 15.
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "core/service.h"
#include "workflow/engine.h"
#include "workflow/workloads.h"

using namespace falkon;

int main(int argc, char** argv) {
  const int images = argc > 1 ? std::atoi(argv[1]) : 487;
  const int overlaps = argc > 2 ? std::atoi(argv[2]) : 2200;
  const int executors = argc > 3 ? std::atoi(argv[3]) : 32;

  const auto graph = workflow::make_montage_workflow(images, overlaps);
  std::printf("Montage mosaic: %d input images, %d overlaps -> %zu tasks,"
              " %.0f CPU-s, critical path %.0f s\n",
              images, overlaps, graph.size(), graph.total_cpu_s(),
              graph.critical_path_s());

  ScaledClock clock(400.0);
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  auto engine_factory = [](Clock& c) {
    return std::make_unique<core::SleepEngine>(c);
  };
  if (!falkon.add_executors(executors, engine_factory, core::ExecutorOptions{})
           .ok()) {
    std::fprintf(stderr, "executor startup failed\n");
    return 1;
  }

  workflow::FalkonProvider provider(falkon.client(), ClientId{1});
  workflow::WorkflowEngine engine(clock, provider);
  workflow::EngineOptions options;
  options.deadline_s = 1e6;
  auto stats = engine.run(graph, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n", stats.error().str().c_str());
    return 1;
  }

  std::printf("\n%-12s %8s %12s %12s %12s\n", "stage", "tasks", "avg exec(s)",
              "avg queue(s)", "done at(s)");
  for (const auto& stage : graph.stages()) {
    const auto& s = stats.value().stages.at(stage);
    std::printf("%-12s %8zu %12.2f %12.2f %12.1f\n", stage.c_str(), s.tasks,
                s.exec_time.mean(), s.queue_time.mean(), s.last_done_s);
  }
  std::printf("\nmosaic complete in %.1f model-seconds on %d executors"
              " (%zu tasks, %zu failed)\n",
              stats.value().makespan_s, executors, stats.value().tasks,
              stats.value().failed);
  return 0;
}
